"""Low-level binary encoding primitives shared by the serialization
fast paths.

Three consumers: the versioned binary summary container
(:mod:`repro.core.persist`, format v3), the shard boundary-summary
wire format (:mod:`repro.shard.wire`), and the ``.cka`` arena image
(:mod:`repro.core.arena`).  All speak the same dialect — unsigned
LEB128 varints, zigzag-mapped signed ints, and big-int bit masks as
little-endian minimal-length byte strings — so a byte layout debugged
once works everywhere.

Bit masks are the workhorse: the analysis represents variable sets as
arbitrary-precision ints, and ``int.to_bytes``/``int.from_bytes`` move
those to and from the wire entirely inside CPython's C layer.  A
2000-variable dense mask is a 250-byte blob, not a 20 kB JSON name
list.

The *aligned raw section* helpers at the bottom serve the arena image:
fixed-width little-endian rows (``int32`` index tables, 64-bit-limb
mask rows) starting on an 8-byte boundary, so a reader may interpret a
memory-mapped section in place — ``numpy.frombuffer`` over the mapped
buffer is a zero-copy view, and the big-int materialization is one
``int.from_bytes`` per row over a memoryview slice.
"""

from __future__ import annotations

import sys
from array import array
from typing import List, Sequence, Tuple


def write_varint(out: bytearray, value: int) -> None:
    """Append ``value`` (non-negative) as an unsigned LEB128 varint."""
    if value < 0:
        raise ValueError("varint value must be non-negative, got %d" % value)
    while value > 0x7F:
        out.append((value & 0x7F) | 0x80)
        value >>= 7
    out.append(value)


def read_varint(data, pos: int) -> Tuple[int, int]:
    """Read an unsigned LEB128 varint at ``pos``; returns ``(value,
    next position)``."""
    result = 0
    shift = 0
    while True:
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if byte < 0x80:
            return result, pos
        shift += 7


def zigzag(value: int) -> int:
    """Map a signed int to an unsigned one (0, -1, 1, -2 → 0, 1, 2, 3)
    so small negatives stay small on the wire."""
    return (value << 1) if value >= 0 else ((-value << 1) - 1)


def unzigzag(value: int) -> int:
    """Inverse of :func:`zigzag`."""
    return (value >> 1) ^ -(value & 1)


def write_signed(out: bytearray, value: int) -> None:
    """Append a signed int as a zigzag varint."""
    write_varint(out, (value << 1) if value >= 0 else ((-value << 1) - 1))


def read_signed(data, pos: int) -> Tuple[int, int]:
    """Read a zigzag varint; returns ``(signed value, next position)``."""
    raw, pos = read_varint(data, pos)
    return ((raw >> 1) if not raw & 1 else -((raw + 1) >> 1)), pos


def mask_to_bytes(mask: int) -> bytes:
    """A non-negative big-int mask as little-endian minimal bytes
    (``b""`` for the empty mask)."""
    if mask < 0:
        raise ValueError("mask must be non-negative, got %d" % mask)
    return mask.to_bytes((mask.bit_length() + 7) // 8, "little")


def mask_from_bytes(blob: bytes) -> int:
    """Inverse of :func:`mask_to_bytes`."""
    return int.from_bytes(blob, "little")


def write_mask(out: bytearray, mask: int) -> None:
    """Append a length-prefixed mask blob."""
    blob = mask_to_bytes(mask)
    write_varint(out, len(blob))
    out += blob


def read_mask(data, pos: int) -> Tuple[int, int]:
    """Read a length-prefixed mask blob; returns ``(mask, next
    position)``."""
    length, pos = read_varint(data, pos)
    end = pos + length
    return int.from_bytes(data[pos:end], "little"), end


def write_mask_adaptive(out: bytearray, mask: int) -> None:
    """Append a mask in whichever of two encodings is smaller.

    A mask's raw byte length is set by its *highest* bit, not its
    population: two formal-translation bits at uid ~9000 cost 1.1 kB
    raw.  The sparse form stores gap-encoded bit positions instead, so
    cost follows popcount.  Leading tag varint: ``0`` = raw
    (length-prefixed little-endian bytes follow), ``n>0`` = sparse with
    ``n`` set bits (first position, then successive gaps − 1).
    """
    if mask < 0:
        raise ValueError("mask must be non-negative, got %d" % mask)
    raw_len = (mask.bit_length() + 7) >> 3
    popcount = mask.bit_count()
    # A sparse entry is a varint per set bit (usually 1–2 bytes for
    # gap-encoded positions); only bother when clearly smaller.  The
    # empty mask goes raw: tag 0, length 0 — two bytes.
    if popcount and popcount * 2 < raw_len:
        write_varint(out, popcount)
        previous = -1
        remaining = mask
        while remaining:
            low = remaining & -remaining
            position = low.bit_length() - 1
            write_varint(out, position - previous - 1)
            previous = position
            remaining ^= low
    else:
        out.append(0)
        write_mask(out, mask)


def read_mask_adaptive(data, pos: int) -> Tuple[int, int]:
    """Inverse of :func:`write_mask_adaptive`."""
    popcount, pos = read_varint(data, pos)
    if popcount == 0:
        return read_mask(data, pos)
    mask = 0
    position = -1
    for _ in range(popcount):
        gap, pos = read_varint(data, pos)
        position += gap + 1
        mask |= 1 << position
    return mask, pos


def write_bytes(out: bytearray, blob: bytes) -> None:
    """Append a length-prefixed byte string."""
    write_varint(out, len(blob))
    out += blob


def read_bytes(data, pos: int) -> Tuple[bytes, int]:
    """Read a length-prefixed byte string; returns ``(bytes, next
    position)``."""
    length, pos = read_varint(data, pos)
    end = pos + length
    return bytes(data[pos:end]), end


# ---------------------------------------------------------------------------
# Aligned raw sections (the ``.cka`` arena image's building blocks).
# ---------------------------------------------------------------------------

#: Every raw section starts on this boundary so 64-bit views over a
#: memory-mapped file are aligned loads.
SECTION_ALIGN = 8


def pad_to_alignment(out: bytearray, align: int = SECTION_ALIGN) -> None:
    """Zero-pad ``out`` so the next byte lands on an ``align`` boundary."""
    remainder = len(out) % align
    if remainder:
        out += b"\0" * (align - remainder)


def aligned(pos: int, align: int = SECTION_ALIGN) -> int:
    """``pos`` rounded up to the next ``align`` boundary."""
    remainder = pos % align
    return pos + (align - remainder) if remainder else pos


def write_i32_section(out: bytearray, values: Sequence[int]) -> None:
    """Append an aligned raw section of little-endian ``int32`` values."""
    pad_to_alignment(out)
    packed = array("i", values)
    if packed.itemsize != 4:  # pragma: no cover - no 4-byte int C type
        raise OverflowError("platform lacks a 4-byte array int type")
    if sys.byteorder != "little":  # pragma: no cover - big-endian host
        packed.byteswap()
    out += packed.tobytes()


def read_i32_section(buffer, offset: int, count: int) -> List[int]:
    """Materialize an ``int32`` raw section as a plain int list (one
    C-level bulk conversion, no per-element Python arithmetic)."""
    packed = array("i")
    packed.frombytes(bytes(buffer[offset : offset + count * 4]))
    if sys.byteorder != "little":  # pragma: no cover - big-endian host
        packed.byteswap()
    return packed.tolist()


def write_mask_section(
    out: bytearray, masks: Sequence[int], words: int
) -> None:
    """Append an aligned raw section of fixed-width mask rows: each
    row is ``words`` little-endian 64-bit limbs — the exact limb layout
    both ``int.to_bytes(..., "little")`` and a ``uint64`` NumPy plane
    row use, so either consumer reads the section without rewriting."""
    pad_to_alignment(out)
    nbytes = words * 8
    out += b"".join(mask.to_bytes(nbytes, "little") for mask in masks)


def read_mask_section(
    buffer, offset: int, rows: int, words: int
) -> List[int]:
    """Materialize a mask-row section as big-ints — one
    ``int.from_bytes`` per row over a shared memoryview (no NumPy
    required; a plane consumer views the same bytes in place)."""
    nbytes = words * 8
    view = memoryview(buffer)[offset : offset + rows * nbytes]
    return [
        int.from_bytes(view[row * nbytes : (row + 1) * nbytes], "little")
        for row in range(rows)
    ]
