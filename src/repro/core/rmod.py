"""``RMOD``/``RUSE`` over the binding multi-graph — Figure 1 of the paper.

``RMOD(p)`` is the set of formal parameters of ``p`` that may be
modified by an invocation of ``p``.  Posed on β, it is the least
solution of the boolean system (equation (6))::

    RMOD(m) = IMOD(m)  ∨  ∨_{e=(m,n) ∈ Eβ} RMOD(n)

whose key property — exploited by the algorithm — is that the solution
is identical at every node of a strongly connected region.  Figure 1's
four steps:

1. find the SCCs of β;
2. replace each SCC by a representer whose ``IMOD`` is the OR of its
   members';
3. traverse the derived (acyclic) graph leaves-to-roots applying
   equation (6);
4. copy each representer's value back to its members.

Each step is ``O(Nβ + Eβ)``, and — the point of Section 3.2 — the unit
of work is a **single-bit** boolean operation, not a bit-vector
operation of length ``Nβ`` as in the swift algorithm.  The
:class:`~repro.core.bitvec.OpCounter` tallies ``single_bit_steps``
accordingly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.bitvec import OpCounter
from repro.core.local import LocalAnalysis
from repro.core.varsets import EffectKind, VariableUniverse
from repro.graphs.binding import BindingMultiGraph
from repro.graphs.scc import tarjan_scc
from repro.lang.symbols import ResolvedProgram, VarSymbol


@dataclass
class RmodResult:
    """Solution of the reference-formal-parameter problem."""

    kind: EffectKind
    graph: BindingMultiGraph
    #: Per β-node boolean: is this formal in RMOD of its procedure?
    node_value: List[bool]
    #: Per pid: bit mask (over variable uids) of RMOD formals.
    proc_mask: List[int]
    counter: OpCounter = field(default_factory=OpCounter)

    def formal_value(self, formal: VarSymbol) -> bool:
        return self.node_value[self.graph.node_of(formal)]

    def formals_of(self, pid: int) -> List[VarSymbol]:
        """The RMOD formals of a procedure, position-ascending."""
        proc = self.graph.resolved.procs[pid]
        return [f for f in proc.formals if self.formal_value(f)]


def solve_rmod(
    graph: BindingMultiGraph,
    local: LocalAnalysis,
    kind: EffectKind = EffectKind.MOD,
    counter: Optional[OpCounter] = None,
) -> RmodResult:
    """Run Figure 1 over β.

    ``IMOD(fp_i^p)`` is true iff ``fp_i^p ∈ IMOD(p)`` using the
    Section 3.3 *extended* ``IMOD`` (so a formal modified only inside a
    procedure nested in ``p`` still seeds the system — §3.3, point 1).
    """
    if counter is None:
        counter = OpCounter()
    resolved = graph.resolved
    initial = local.initial(kind)
    num_nodes = graph.num_formals

    # IMOD(fp): one single-bit test per node.
    node_imod = [False] * num_nodes
    for node, formal in enumerate(graph.formals):
        node_imod[node] = (initial[formal.proc.pid] >> formal.uid) & 1 == 1
        counter.single_bit_steps += 1

    # Step (1): strongly connected components of β.
    component_of, components = tarjan_scc(num_nodes, graph.successors)

    # Step (2): representer IMOD = OR of member IMODs; RMOD := false.
    num_components = len(components)
    comp_imod = [False] * num_components
    for comp_index, members in enumerate(components):
        value = False
        for member in members:
            value = value or node_imod[member]
            counter.single_bit_steps += 1
        comp_imod[comp_index] = value
    comp_rmod = [False] * num_components

    # Step (3): leaves-to-roots sweep of the derived graph applying
    # equation (6).  ``components`` is already in reverse topological
    # order (successor components first), so a single forward scan
    # sees every successor's final value.
    for comp_index, members in enumerate(components):
        value = comp_imod[comp_index]
        for member in members:
            for succ in graph.successors[member]:
                value = value or comp_rmod[component_of[succ]]
                counter.single_bit_steps += 1
        comp_rmod[comp_index] = value

    # Step (4): copy representer values back to members.
    node_value = [False] * num_nodes
    for comp_index, members in enumerate(components):
        for member in members:
            node_value[member] = comp_rmod[comp_index]
            counter.single_bit_steps += 1

    proc_mask = [0] * resolved.num_procs
    for node, formal in enumerate(graph.formals):
        if node_value[node]:
            proc_mask[formal.proc.pid] |= 1 << formal.uid

    return RmodResult(
        kind=kind,
        graph=graph,
        node_value=node_value,
        proc_mask=proc_mask,
        counter=counter,
    )


def solve_rmod_fused(
    arena,
    kinds: Sequence[EffectKind],
    counters: Sequence[OpCounter],
) -> Tuple[List[RmodResult], List[int]]:
    """Figure 1 for every kind in one sweep over the arena's β CSR.

    The per-node state is a K-bit int (bit ``k`` = kind ``k``'s
    boolean), so one integer OR advances all kinds, and the SCC
    condensation comes from the arena — computed once and shared with
    anything else that asks.  Returns the per-kind :class:`RmodResult`
    list plus the packed K-bit node vector (consumed directly by
    :func:`repro.core.imod_plus.compute_imod_plus_fused`).

    Counter identity with the legacy path: Figure 1 charges one
    single-bit step per node in each of steps (init), (2) and (4) and
    one per β edge in step (3) — all structural, identical for every
    kind — so each kind's counter receives exactly ``3·Nβ + Eβ``, the
    same tally :func:`solve_rmod` accumulates one increment at a time.
    """
    resolved = arena.resolved
    local = arena.local
    csr = arena.beta_csr
    heads = csr.heads
    succ = csr.succ
    num_nodes = csr.num_nodes
    num_kinds = len(kinds)

    initial = [local.initial(kind) for kind in kinds]
    formal_pid = arena.beta_formal_pid
    formal_uid = arena.beta_formal_uid

    node_imod = [0] * num_nodes
    for node in range(num_nodes):
        pid = formal_pid[node]
        uid = formal_uid[node]
        bits = 0
        for k in range(num_kinds):
            bits |= ((initial[k][pid] >> uid) & 1) << k
        node_imod[node] = bits

    # Step (1): the shared condensation of β.
    component_of, components = arena.beta_condensation()

    # Step (2): representer IMOD = OR of member IMODs.
    num_components = len(components)
    comp_value = [0] * num_components
    for comp_index, members in enumerate(components):
        value = 0
        for member in members:
            value |= node_imod[member]
        comp_value[comp_index] = value

    # Step (3): leaves-to-roots sweep applying equation (6); components
    # are in reverse topological order, so successors are final.
    for comp_index, members in enumerate(components):
        value = comp_value[comp_index]
        for member in members:
            for target in succ[heads[member]:heads[member + 1]]:
                value |= comp_value[component_of[target]]
        comp_value[comp_index] = value

    # Step (4): copy back.
    node_bits = [0] * num_nodes
    for comp_index, members in enumerate(components):
        value = comp_value[comp_index]
        for member in members:
            node_bits[member] = value

    per_kind_steps = 3 * num_nodes + csr.num_edges
    num_procs = resolved.num_procs
    results: List[RmodResult] = []
    for k, kind in enumerate(kinds):
        counters[k].single_bit_steps += per_kind_steps
        node_value = [bool((bits >> k) & 1) for bits in node_bits]
        proc_mask = [0] * num_procs
        for node in range(num_nodes):
            if node_value[node]:
                proc_mask[formal_pid[node]] |= 1 << formal_uid[node]
        results.append(
            RmodResult(
                kind=kind,
                graph=arena.binding_graph,
                node_value=node_value,
                proc_mask=proc_mask,
                counter=counters[k],
            )
        )
    return results, node_bits
