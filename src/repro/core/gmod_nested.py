"""Multi-level lexical nesting — the extension at the end of Section 4.

For languages like Pascal where procedures declare procedures, a
variable local to a procedure ``a`` at nesting level λ is *global* to
the procedures nested inside ``a``.  The paper handles this by solving
``d_P`` simultaneous problems, where **problem i** is defined on the
graph ``G_i`` in which all edges representing calls to procedures
declared at levels shallower than ``i`` are ignored, and (in our
formulation) propagates only the variables declared at level ``i−1``.

Why that is the right graph: a variable ``v`` local to ``a`` (level λ)
is filtered exactly at ``a`` by equation (4).  Any call chain that
avoids ``a`` and reaches a procedure that can even name ``v`` stays
inside ``a``'s nest — procedures nested in ``a`` are lexically
invisible elsewhere — so every procedure on the chain (after its start)
has level ≥ λ+1.  Those are precisely the edges ``G_{λ+1}`` keeps.
Hence ``GMOD(p) = ∪_i GMOD_i(p)`` with ``GMOD_i`` a pure reachability
union over ``G_i``.

Three solvers, strongest claims last:

* :func:`solve_equation4_reference` — SCC condensation plus per-SCC
  fixpoint iteration of equation (4) with full ``LOCAL`` filtering.
  Obviously correct for arbitrary nesting; the oracle for the others.
* :func:`findgmod_per_level` — the paper's "easy" version: run the
  one-level algorithm once per level, ``O(d_P·(E_C + N_C))`` bit-vector
  steps.
* :func:`findgmod_multilevel` — the paper's optimised version: a
  *single* depth-first search maintaining a **vector of lowlink
  values** (one per level) and parallel per-level stacks, for
  ``O(E_C + d_P·N_C)`` bit-vector steps.  Per edge it does O(1)
  bit-vector work (the per-level slices of equation (4) batch into one
  masked union because a procedure at level λ can only carry variables
  from levels < λ past its own frame); the ``d_P`` factor rides only on
  per-node work (stack pushes, the lowlink correction sweep, and
  per-level component closes), exactly as the paper argues.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.core.bitvec import OpCounter
from repro.core.varsets import EffectKind, VariableUniverse
from repro.graphs.callgraph import CallMultiGraph
from repro.graphs.scc import tarjan_scc


@dataclass
class NestedGmodResult:
    """GMOD for every procedure of a (possibly nested) program."""

    kind: EffectKind
    gmod: List[int]
    counter: OpCounter = field(default_factory=OpCounter)
    #: Which solver produced this (for reporting).
    method: str = ""


# ---------------------------------------------------------------------------
# Reference solver: equation (4) by condensation + fixpoint.
# ---------------------------------------------------------------------------


def solve_equation4_reference(
    graph: CallMultiGraph,
    imod_plus: Sequence[int],
    universe: VariableUniverse,
    kind: EffectKind = EffectKind.MOD,
    counter: Optional[OpCounter] = None,
) -> NestedGmodResult:
    """Least solution of equation (4) by SCC condensation and, within
    each component, round-robin iteration to a fixpoint.

    Not linear (within a component of size k it may sweep k times), but
    transparently correct for any nesting structure — the oracle the
    fast algorithms are tested against.
    """
    if counter is None:
        counter = OpCounter()
    num_nodes = graph.num_nodes
    successors = graph.successors
    local_mask = universe.local_mask
    gmod = [imod_plus[pid] for pid in range(num_nodes)]
    counter.bit_vector_steps += num_nodes

    component_of, components = tarjan_scc(num_nodes, successors)
    # Components arrive callees-first, so each component only depends on
    # already-final values plus its own members.
    for members in components:
        changed = True
        while changed:
            changed = False
            for node in members:
                value = gmod[node]
                for succ in successors[node]:
                    value |= gmod[succ] & ~local_mask[succ]
                    counter.bit_vector_steps += 1
                if value != gmod[node]:
                    gmod[node] = value
                    changed = True
    return NestedGmodResult(kind=kind, gmod=gmod, counter=counter, method="reference")


# ---------------------------------------------------------------------------
# Per-level repetition: O(d_P (E + N)).
# ---------------------------------------------------------------------------


def _below_masks(universe: VariableUniverse, max_level: int) -> List[int]:
    """``below[λ]`` = mask of variables declared at levels < λ."""
    below = [0] * (max_level + 2)
    for level in range(1, max_level + 2):
        mask = below[level - 1]
        if level - 1 < len(universe.level_mask):
            mask |= universe.level_mask[level - 1]
        below[level] = mask
    return below


def findgmod_per_level(
    graph: CallMultiGraph,
    imod_plus: Sequence[int],
    universe: VariableUniverse,
    kind: EffectKind = EffectKind.MOD,
    counter: Optional[OpCounter] = None,
) -> NestedGmodResult:
    """Solve the ``d_P`` per-level problems one after another.

    Problem ``i`` drops every edge whose callee sits at level < i,
    restricts the initial sets to level-(i−1) variables, and takes a
    pure reachability union (no ``LOCAL`` filtering is needed: no
    procedure at level ≥ i owns a level-(i−1) variable).  Cost is one
    condensation pass per level — ``O(d_P(E_C + N_C))`` bit-vector
    steps, the bound the paper quotes for the simple repetition.
    """
    if counter is None:
        counter = OpCounter()
    num_nodes = graph.num_nodes
    levels = [proc.level for proc in graph.resolved.procs]
    gmod = [0] * num_nodes

    # One problem per variable level λ = 0 .. max-var-level; problem
    # i = λ+1 keeps only edges into procedures at level >= i.  The
    # deepest problem's graph may be edgeless — it still contributes
    # each procedure's own-level IMOD+ slice via the empty path.
    for problem in range(1, len(universe.level_mask) + 1):
        level_mask = universe.level_mask[problem - 1]
        filtered: List[List[int]] = [[] for _ in range(num_nodes)]
        for node in range(num_nodes):
            for succ in graph.successors[node]:
                if levels[succ] >= problem:
                    filtered[node].append(succ)
        component_of, components = tarjan_scc(num_nodes, filtered)
        comp_value = [0] * len(components)
        for comp_index, members in enumerate(components):
            value = 0
            for member in members:
                value |= imod_plus[member] & level_mask
                counter.bit_vector_steps += 1
            # Components are emitted callees-first, so successors final.
            for member in members:
                for succ in filtered[member]:
                    succ_comp = component_of[succ]
                    if succ_comp != comp_index:
                        value |= comp_value[succ_comp]
                        counter.bit_vector_steps += 1
            comp_value[comp_index] = value
        for node in range(num_nodes):
            gmod[node] |= comp_value[component_of[node]]
            counter.bit_vector_steps += 1
    return NestedGmodResult(kind=kind, gmod=gmod, counter=counter, method="per-level")


# ---------------------------------------------------------------------------
# Single-DFS multi-level algorithm: O(E + d_P N).
# ---------------------------------------------------------------------------


def findgmod_multilevel(
    graph: CallMultiGraph,
    imod_plus: Sequence[int],
    universe: VariableUniverse,
    kind: EffectKind = EffectKind.MOD,
    counter: Optional[OpCounter] = None,
    check_invariants: bool = False,
) -> NestedGmodResult:
    """One depth-first search solving all ``d_P`` problems at once.

    Per-level machinery, following the paper's sketch:

    * ``lowlink[p]`` is a vector with one entry per level 1..d_P.  An
      edge into a callee at level λ records its contribution at index
      min(λ, the deepest level at which the callee is still stacked);
      a correction sweep at node exit propagates minima from deeper
      indices to shallower ones (an edge present in problem i is
      present in every problem j ≤ i).
    * one stack per level; a node is pushed on all of them when first
      visited and ``stack_level[v]`` tracks the deepest level at which
      ``v`` is still stacked (components close deepest-level-first
      because the level-i regions nest).
    * equation (4) applies **eagerly on every edge** as a single masked
      union ``GMOD[p] |= GMOD[q] & below(level(q))`` — sound because a
      partial ``GMOD[q]`` is always a subset of the final one — and the
      per-level line-22 at each level-i close distributes the root's
      level-(i−1) slice to the members, which repairs exactly the
      contributions the eager unions could not see.

    ``check_invariants`` additionally asserts, at every node exit, the
    two structural properties the paper's sketch rests on: the
    corrected lowlink vector is monotone (``lowlink_i ≤ lowlink_{i+1}``
    — the level-i regions nest) and the set of levels closing at a node
    forms a suffix ``[i*, d_P]`` (deepest regions close first).  Used
    by the test suite; off by default.
    """
    if counter is None:
        counter = OpCounter()
    resolved = graph.resolved
    num_nodes = graph.num_nodes
    successors = graph.successors
    levels = [proc.level for proc in resolved.procs]
    d_p = max(levels) if levels else 0
    if d_p == 0:
        # Only the main procedure: its GMOD is its IMOD+.
        return NestedGmodResult(
            kind=kind, gmod=list(imod_plus), counter=counter, method="multilevel"
        )
    below = _below_masks(universe, d_p)
    level_mask = list(universe.level_mask) + [0] * (d_p + 1 - len(universe.level_mask))

    INF = num_nodes + 2
    gmod = [0] * num_nodes
    dfn = [0] * num_nodes
    # lowlink[v] is a list indexed 1..d_p (slot 0 unused).
    lowlink: List[Optional[List[int]]] = [None] * num_nodes
    stack_level = [0] * num_nodes  # Deepest level at which v is stacked.
    stacks: List[List[int]] = [[] for _ in range(d_p + 1)]
    next_dfn = 1

    roots = [resolved.main.pid] + list(range(num_nodes))
    for root in roots:
        if dfn[root] != 0:
            continue
        dfn[root] = next_dfn
        next_dfn += 1
        gmod[root] = imod_plus[root]
        counter.bit_vector_steps += 1
        lowlink[root] = [dfn[root]] * (d_p + 1)
        stack_level[root] = d_p
        for level in range(1, d_p + 1):
            stacks[level].append(root)
        frames: List[List[object]] = [[root, iter(successors[root])]]

        while frames:
            node, succ_iter = frames[-1]
            descended = False
            for succ in succ_iter:
                if dfn[succ] == 0:
                    dfn[succ] = next_dfn
                    next_dfn += 1
                    gmod[succ] = imod_plus[succ]
                    counter.bit_vector_steps += 1
                    lowlink[succ] = [dfn[succ]] * (d_p + 1)
                    stack_level[succ] = d_p
                    for level in range(1, d_p + 1):
                        stacks[level].append(succ)
                    frames.append([succ, iter(successors[succ])])
                    descended = True
                    break
                # Non-tree edge.  Eager equation (4): one masked union.
                gmod[node] |= gmod[succ] & below[levels[succ]]
                counter.bit_vector_steps += 1
                if dfn[succ] < dfn[node]:
                    # Back/cross edge; it matters for problems
                    # i <= min(level(succ), deepest open level of succ).
                    slot = min(levels[succ], stack_level[succ])
                    if slot >= 1 and dfn[succ] < lowlink[node][slot]:
                        lowlink[node][slot] = dfn[succ]
            if descended:
                continue

            frames.pop()
            node_low = lowlink[node]
            # Correction sweep: a contribution recorded at index j
            # applies to every problem i <= j.
            for level in range(d_p - 1, 0, -1):
                if node_low[level + 1] < node_low[level]:
                    node_low[level] = node_low[level + 1]
            if check_invariants:
                # Monotone after correction: problem i has every edge
                # problem i+1 has, so its lowlink can only be smaller.
                for level in range(1, d_p):
                    assert node_low[level] <= node_low[level + 1], (
                        "lowlink vector not monotone at node %d" % node
                    )
                closing = [
                    level
                    for level in range(1, d_p + 1)
                    if node_low[level] == dfn[node]
                ]
                if closing:
                    assert closing == list(
                        range(closing[0], d_p + 1)
                    ), "closing levels are not a suffix at node %d" % node
            # Per-level root test; regions nest, so the closing levels
            # form a suffix [i*, d_p] — close deepest first.
            for level in range(d_p, 0, -1):
                if node_low[level] != dfn[node]:
                    break
                root_slice = gmod[node] & level_mask[level - 1]
                while True:
                    member = stacks[level].pop()
                    stack_level[member] = level - 1
                    gmod[member] |= root_slice
                    counter.bit_vector_steps += 1
                    if member == node:
                        break
            if frames:
                parent = frames[-1][0]
                parent_low = lowlink[parent]
                # Tree edge (parent -> node): exists in problems
                # i <= level(node); merge the child's lowlinks there.
                for level in range(1, levels[node] + 1):
                    if node_low[level] < parent_low[level]:
                        parent_low[level] = node_low[level]
                # Fall-through application of equation (4) on the tree
                # edge, as in the one-level algorithm.
                gmod[parent] |= gmod[node] & below[levels[node]]
                counter.bit_vector_steps += 1

    return NestedGmodResult(kind=kind, gmod=gmod, counter=counter, method="multilevel")


# ---------------------------------------------------------------------------
# Fused (packed multi-kind) variants over the program arena.
# ---------------------------------------------------------------------------


def solve_equation4_reference_fused(
    arena,
    imod_plus_rows: Sequence[Sequence[int]],
    num_kinds: int,
    counters: Sequence[OpCounter],
) -> List[List[int]]:
    """The reference fixpoint for every kind over the arena's shared
    call-graph condensation (one Tarjan pass total, not one per kind).

    The reference solver's tally is **value-dependent** — a component
    sweeps until that kind's values stop changing — and the kinds may
    converge after different sweep counts.  The lanes never interact,
    so lane ``k`` after fused sweep ``t`` equals the legacy kind-``k``
    state after its sweep ``t``; a kind is charged the component's edge
    total for every sweep up to and including its first no-change
    sweep (the legacy loop's exact accounting), then drops out of the
    remaining sweeps entirely — its lane is already at the component
    fixpoint.
    """
    heads = arena.call_csr.heads
    succ = arena.call_csr.succ
    num_nodes = arena.call_csr.num_nodes
    strip = arena.strip_masks()

    rows = [list(row) for row in imod_plus_rows]
    for counter in counters:
        counter.bit_vector_steps += num_nodes

    component_of, components = arena.call_condensation()
    for members in components:
        degree_total = sum(heads[m + 1] - heads[m] for m in members)
        active = list(range(num_kinds))
        while active:
            still = []
            for k in active:
                row = rows[k]
                changed = False
                for node in members:
                    value = row[node]
                    for target in succ[heads[node]:heads[node + 1]]:
                        value |= row[target] & strip[target]
                    if value != row[node]:
                        row[node] = value
                        changed = True
                counters[k].bit_vector_steps += degree_total
                if changed:
                    still.append(k)
            active = still
    return rows


def findgmod_per_level_fused(
    arena,
    imod_plus_rows: Sequence[Sequence[int]],
    num_kinds: int,
    counters: Sequence[OpCounter],
) -> List[List[int]]:
    """The per-level repetition for every kind at once.

    Each problem's filtered graph and its Tarjan pass are built once
    and shared by all kinds (the legacy path rebuilds them per kind);
    every tally here is structural — one per member seed, one per
    cross-component edge, one per node fold — so each kind's counter
    receives the identical total.
    """
    universe = arena.universe
    resolved = arena.resolved
    heads = arena.call_csr.heads
    succ = arena.call_csr.succ
    num_nodes = arena.call_csr.num_nodes
    levels = [proc.level for proc in resolved.procs]
    rows: List[List[int]] = [[0] * num_nodes for _ in range(num_kinds)]
    steps = 0

    for problem in range(1, len(universe.level_mask) + 1):
        level_mask = universe.level_mask[problem - 1]
        filtered: List[List[int]] = [[] for _ in range(num_nodes)]
        for node in range(num_nodes):
            for target in succ[heads[node]:heads[node + 1]]:
                if levels[target] >= problem:
                    filtered[node].append(target)
        component_of, components = tarjan_scc(num_nodes, filtered)
        arena.note_condensation("call:level%d" % problem)
        comp_value = [[0] * len(components) for _ in range(num_kinds)]
        for comp_index, members in enumerate(components):
            values = [0] * num_kinds
            for member in members:
                for k in range(num_kinds):
                    values[k] |= imod_plus_rows[k][member] & level_mask
                steps += 1
            for member in members:
                for target in filtered[member]:
                    succ_comp = component_of[target]
                    if succ_comp != comp_index:
                        for k in range(num_kinds):
                            values[k] |= comp_value[k][succ_comp]
                        steps += 1
            for k in range(num_kinds):
                comp_value[k][comp_index] = values[k]
        for node in range(num_nodes):
            comp_index = component_of[node]
            for k in range(num_kinds):
                rows[k][node] |= comp_value[k][comp_index]
            steps += 1

    for counter in counters:
        counter.bit_vector_steps += steps
    return rows


def findgmod_multilevel_fused(
    arena,
    imod_plus_rows: Sequence[Sequence[int]],
    num_kinds: int,
    counters: Sequence[OpCounter],
    check_invariants: bool = False,
) -> List[List[int]]:
    """The single-DFS multi-level algorithm for every kind in one walk.

    The DFS skeleton — lowlink vectors, per-level stacks, the
    correction sweep — runs once; each kind's GMOD row rides along as a
    separate mask lane.  Every tally is structural (first visit,
    non-tree edge, member pop, tree fall-through), identical across
    kinds, so each counter receives the same total the legacy walk
    accumulates.  The walk registers one condensation-equivalent pass
    on the call graph.
    """
    resolved = arena.resolved
    universe = arena.universe
    heads = arena.call_csr.heads
    succ = arena.call_csr.succ
    num_nodes = arena.call_csr.num_nodes
    levels = [proc.level for proc in resolved.procs]
    d_p = max(levels) if levels else 0
    arena.note_condensation("call")
    if d_p == 0:
        return [list(row) for row in imod_plus_rows]
    below = _below_masks(universe, d_p)
    level_mask = list(universe.level_mask) + [0] * (
        d_p + 1 - len(universe.level_mask)
    )

    rows: List[List[int]] = [[0] * num_nodes for _ in range(num_kinds)]
    dfn = [0] * num_nodes
    lowlink: List[Optional[List[int]]] = [None] * num_nodes
    stack_level = [0] * num_nodes
    stacks: List[List[int]] = [[] for _ in range(d_p + 1)]
    next_dfn = 1
    steps = 0

    roots = [resolved.main.pid] + list(range(num_nodes))
    for root in roots:
        if dfn[root] != 0:
            continue
        dfn[root] = next_dfn
        next_dfn += 1
        for k in range(num_kinds):
            rows[k][root] = imod_plus_rows[k][root]
        steps += 1
        lowlink[root] = [dfn[root]] * (d_p + 1)
        stack_level[root] = d_p
        for level in range(1, d_p + 1):
            stacks[level].append(root)
        frames: List[List[object]] = [[root, iter(succ[heads[root]:heads[root + 1]])]]

        while frames:
            node, succ_iter = frames[-1]
            descended = False
            for target in succ_iter:
                if dfn[target] == 0:
                    dfn[target] = next_dfn
                    next_dfn += 1
                    for k in range(num_kinds):
                        rows[k][target] = imod_plus_rows[k][target]
                    steps += 1
                    lowlink[target] = [dfn[target]] * (d_p + 1)
                    stack_level[target] = d_p
                    for level in range(1, d_p + 1):
                        stacks[level].append(target)
                    frames.append(
                        [target, iter(succ[heads[target]:heads[target + 1]])]
                    )
                    descended = True
                    break
                mask = below[levels[target]]
                for row in rows:
                    row[node] |= row[target] & mask
                steps += 1
                if dfn[target] < dfn[node]:
                    slot = min(levels[target], stack_level[target])
                    if slot >= 1 and dfn[target] < lowlink[node][slot]:
                        lowlink[node][slot] = dfn[target]
            if descended:
                continue

            frames.pop()
            node_low = lowlink[node]
            for level in range(d_p - 1, 0, -1):
                if node_low[level + 1] < node_low[level]:
                    node_low[level] = node_low[level + 1]
            if check_invariants:
                for level in range(1, d_p):
                    assert node_low[level] <= node_low[level + 1], (
                        "lowlink vector not monotone at node %d" % node
                    )
                closing = [
                    level
                    for level in range(1, d_p + 1)
                    if node_low[level] == dfn[node]
                ]
                if closing:
                    assert closing == list(
                        range(closing[0], d_p + 1)
                    ), "closing levels are not a suffix at node %d" % node
            for level in range(d_p, 0, -1):
                if node_low[level] != dfn[node]:
                    break
                lm = level_mask[level - 1]
                slices = [row[node] & lm for row in rows]
                while True:
                    member = stacks[level].pop()
                    stack_level[member] = level - 1
                    for k in range(num_kinds):
                        rows[k][member] |= slices[k]
                    steps += 1
                    if member == node:
                        break
            if frames:
                parent = frames[-1][0]
                parent_low = lowlink[parent]
                for level in range(1, levels[node] + 1):
                    if node_low[level] < parent_low[level]:
                        parent_low[level] = node_low[level]
                mask = below[levels[node]]
                for row in rows:
                    row[parent] |= row[node] & mask
                steps += 1

    for counter in counters:
        counter.bit_vector_steps += steps
    return rows
