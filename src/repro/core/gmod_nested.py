"""Multi-level lexical nesting — the extension at the end of Section 4.

For languages like Pascal where procedures declare procedures, a
variable local to a procedure ``a`` at nesting level λ is *global* to
the procedures nested inside ``a``.  The paper handles this by solving
``d_P`` simultaneous problems, where **problem i** is defined on the
graph ``G_i`` in which all edges representing calls to procedures
declared at levels shallower than ``i`` are ignored, and (in our
formulation) propagates only the variables declared at level ``i−1``.

Why that is the right graph: a variable ``v`` local to ``a`` (level λ)
is filtered exactly at ``a`` by equation (4).  Any call chain that
avoids ``a`` and reaches a procedure that can even name ``v`` stays
inside ``a``'s nest — procedures nested in ``a`` are lexically
invisible elsewhere — so every procedure on the chain (after its start)
has level ≥ λ+1.  Those are precisely the edges ``G_{λ+1}`` keeps.
Hence ``GMOD(p) = ∪_i GMOD_i(p)`` with ``GMOD_i`` a pure reachability
union over ``G_i``.

Three solvers, strongest claims last:

* :func:`solve_equation4_reference` — SCC condensation plus per-SCC
  fixpoint iteration of equation (4) with full ``LOCAL`` filtering.
  Obviously correct for arbitrary nesting; the oracle for the others.
* :func:`findgmod_per_level` — the paper's "easy" version: run the
  one-level algorithm once per level, ``O(d_P·(E_C + N_C))`` bit-vector
  steps.
* :func:`findgmod_multilevel` — the paper's optimised version: a
  *single* depth-first search maintaining a **vector of lowlink
  values** (one per level) and parallel per-level stacks, for
  ``O(E_C + d_P·N_C)`` bit-vector steps.  Per edge it does O(1)
  bit-vector work (the per-level slices of equation (4) batch into one
  masked union because a procedure at level λ can only carry variables
  from levels < λ past its own frame); the ``d_P`` factor rides only on
  per-node work (stack pushes, the lowlink correction sweep, and
  per-level component closes), exactly as the paper argues.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.core.bitvec import OpCounter
from repro.core.varsets import EffectKind, VariableUniverse
from repro.graphs.callgraph import CallMultiGraph
from repro.graphs.scc import tarjan_scc


@dataclass
class NestedGmodResult:
    """GMOD for every procedure of a (possibly nested) program."""

    kind: EffectKind
    gmod: List[int]
    counter: OpCounter = field(default_factory=OpCounter)
    #: Which solver produced this (for reporting).
    method: str = ""


# ---------------------------------------------------------------------------
# Reference solver: equation (4) by condensation + fixpoint.
# ---------------------------------------------------------------------------


def solve_equation4_reference(
    graph: CallMultiGraph,
    imod_plus: Sequence[int],
    universe: VariableUniverse,
    kind: EffectKind = EffectKind.MOD,
    counter: Optional[OpCounter] = None,
) -> NestedGmodResult:
    """Least solution of equation (4) by SCC condensation and, within
    each component, round-robin iteration to a fixpoint.

    Not linear (within a component of size k it may sweep k times), but
    transparently correct for any nesting structure — the oracle the
    fast algorithms are tested against.
    """
    if counter is None:
        counter = OpCounter()
    num_nodes = graph.num_nodes
    successors = graph.successors
    local_mask = universe.local_mask
    gmod = [imod_plus[pid] for pid in range(num_nodes)]
    counter.bit_vector_steps += num_nodes

    component_of, components = tarjan_scc(num_nodes, successors)
    # Components arrive callees-first, so each component only depends on
    # already-final values plus its own members.
    for members in components:
        changed = True
        while changed:
            changed = False
            for node in members:
                value = gmod[node]
                for succ in successors[node]:
                    value |= gmod[succ] & ~local_mask[succ]
                    counter.bit_vector_steps += 1
                if value != gmod[node]:
                    gmod[node] = value
                    changed = True
    return NestedGmodResult(kind=kind, gmod=gmod, counter=counter, method="reference")


# ---------------------------------------------------------------------------
# Per-level repetition: O(d_P (E + N)).
# ---------------------------------------------------------------------------


def _below_masks(universe: VariableUniverse, max_level: int) -> List[int]:
    """``below[λ]`` = mask of variables declared at levels < λ."""
    below = [0] * (max_level + 2)
    for level in range(1, max_level + 2):
        mask = below[level - 1]
        if level - 1 < len(universe.level_mask):
            mask |= universe.level_mask[level - 1]
        below[level] = mask
    return below


def findgmod_per_level(
    graph: CallMultiGraph,
    imod_plus: Sequence[int],
    universe: VariableUniverse,
    kind: EffectKind = EffectKind.MOD,
    counter: Optional[OpCounter] = None,
) -> NestedGmodResult:
    """Solve the ``d_P`` per-level problems one after another.

    Problem ``i`` drops every edge whose callee sits at level < i,
    restricts the initial sets to level-(i−1) variables, and takes a
    pure reachability union (no ``LOCAL`` filtering is needed: no
    procedure at level ≥ i owns a level-(i−1) variable).  Cost is one
    condensation pass per level — ``O(d_P(E_C + N_C))`` bit-vector
    steps, the bound the paper quotes for the simple repetition.
    """
    if counter is None:
        counter = OpCounter()
    num_nodes = graph.num_nodes
    levels = [proc.level for proc in graph.resolved.procs]
    gmod = [0] * num_nodes

    # One problem per variable level λ = 0 .. max-var-level; problem
    # i = λ+1 keeps only edges into procedures at level >= i.  The
    # deepest problem's graph may be edgeless — it still contributes
    # each procedure's own-level IMOD+ slice via the empty path.
    for problem in range(1, len(universe.level_mask) + 1):
        level_mask = universe.level_mask[problem - 1]
        filtered: List[List[int]] = [[] for _ in range(num_nodes)]
        for node in range(num_nodes):
            for succ in graph.successors[node]:
                if levels[succ] >= problem:
                    filtered[node].append(succ)
        component_of, components = tarjan_scc(num_nodes, filtered)
        comp_value = [0] * len(components)
        for comp_index, members in enumerate(components):
            value = 0
            for member in members:
                value |= imod_plus[member] & level_mask
                counter.bit_vector_steps += 1
            # Components are emitted callees-first, so successors final.
            for member in members:
                for succ in filtered[member]:
                    succ_comp = component_of[succ]
                    if succ_comp != comp_index:
                        value |= comp_value[succ_comp]
                        counter.bit_vector_steps += 1
            comp_value[comp_index] = value
        for node in range(num_nodes):
            gmod[node] |= comp_value[component_of[node]]
            counter.bit_vector_steps += 1
    return NestedGmodResult(kind=kind, gmod=gmod, counter=counter, method="per-level")


# ---------------------------------------------------------------------------
# Single-DFS multi-level algorithm: O(E + d_P N).
# ---------------------------------------------------------------------------


def findgmod_multilevel(
    graph: CallMultiGraph,
    imod_plus: Sequence[int],
    universe: VariableUniverse,
    kind: EffectKind = EffectKind.MOD,
    counter: Optional[OpCounter] = None,
    check_invariants: bool = False,
) -> NestedGmodResult:
    """One depth-first search solving all ``d_P`` problems at once.

    Per-level machinery, following the paper's sketch:

    * ``lowlink[p]`` is a vector with one entry per level 1..d_P.  An
      edge into a callee at level λ records its contribution at index
      min(λ, the deepest level at which the callee is still stacked);
      a correction sweep at node exit propagates minima from deeper
      indices to shallower ones (an edge present in problem i is
      present in every problem j ≤ i).
    * one stack per level; a node is pushed on all of them when first
      visited and ``stack_level[v]`` tracks the deepest level at which
      ``v`` is still stacked (components close deepest-level-first
      because the level-i regions nest).
    * equation (4) applies **eagerly on every edge** as a single masked
      union ``GMOD[p] |= GMOD[q] & below(level(q))`` — sound because a
      partial ``GMOD[q]`` is always a subset of the final one — and the
      per-level line-22 at each level-i close distributes the root's
      level-(i−1) slice to the members, which repairs exactly the
      contributions the eager unions could not see.

    ``check_invariants`` additionally asserts, at every node exit, the
    two structural properties the paper's sketch rests on: the
    corrected lowlink vector is monotone (``lowlink_i ≤ lowlink_{i+1}``
    — the level-i regions nest) and the set of levels closing at a node
    forms a suffix ``[i*, d_P]`` (deepest regions close first).  Used
    by the test suite; off by default.
    """
    if counter is None:
        counter = OpCounter()
    resolved = graph.resolved
    num_nodes = graph.num_nodes
    successors = graph.successors
    levels = [proc.level for proc in resolved.procs]
    d_p = max(levels) if levels else 0
    if d_p == 0:
        # Only the main procedure: its GMOD is its IMOD+.
        return NestedGmodResult(
            kind=kind, gmod=list(imod_plus), counter=counter, method="multilevel"
        )
    below = _below_masks(universe, d_p)
    level_mask = list(universe.level_mask) + [0] * (d_p + 1 - len(universe.level_mask))

    INF = num_nodes + 2
    gmod = [0] * num_nodes
    dfn = [0] * num_nodes
    # lowlink[v] is a list indexed 1..d_p (slot 0 unused).
    lowlink: List[Optional[List[int]]] = [None] * num_nodes
    stack_level = [0] * num_nodes  # Deepest level at which v is stacked.
    stacks: List[List[int]] = [[] for _ in range(d_p + 1)]
    next_dfn = 1

    roots = [resolved.main.pid] + list(range(num_nodes))
    for root in roots:
        if dfn[root] != 0:
            continue
        dfn[root] = next_dfn
        next_dfn += 1
        gmod[root] = imod_plus[root]
        counter.bit_vector_steps += 1
        lowlink[root] = [dfn[root]] * (d_p + 1)
        stack_level[root] = d_p
        for level in range(1, d_p + 1):
            stacks[level].append(root)
        frames: List[List[object]] = [[root, iter(successors[root])]]

        while frames:
            node, succ_iter = frames[-1]
            descended = False
            for succ in succ_iter:
                if dfn[succ] == 0:
                    dfn[succ] = next_dfn
                    next_dfn += 1
                    gmod[succ] = imod_plus[succ]
                    counter.bit_vector_steps += 1
                    lowlink[succ] = [dfn[succ]] * (d_p + 1)
                    stack_level[succ] = d_p
                    for level in range(1, d_p + 1):
                        stacks[level].append(succ)
                    frames.append([succ, iter(successors[succ])])
                    descended = True
                    break
                # Non-tree edge.  Eager equation (4): one masked union.
                gmod[node] |= gmod[succ] & below[levels[succ]]
                counter.bit_vector_steps += 1
                if dfn[succ] < dfn[node]:
                    # Back/cross edge; it matters for problems
                    # i <= min(level(succ), deepest open level of succ).
                    slot = min(levels[succ], stack_level[succ])
                    if slot >= 1 and dfn[succ] < lowlink[node][slot]:
                        lowlink[node][slot] = dfn[succ]
            if descended:
                continue

            frames.pop()
            node_low = lowlink[node]
            # Correction sweep: a contribution recorded at index j
            # applies to every problem i <= j.
            for level in range(d_p - 1, 0, -1):
                if node_low[level + 1] < node_low[level]:
                    node_low[level] = node_low[level + 1]
            if check_invariants:
                # Monotone after correction: problem i has every edge
                # problem i+1 has, so its lowlink can only be smaller.
                for level in range(1, d_p):
                    assert node_low[level] <= node_low[level + 1], (
                        "lowlink vector not monotone at node %d" % node
                    )
                closing = [
                    level
                    for level in range(1, d_p + 1)
                    if node_low[level] == dfn[node]
                ]
                if closing:
                    assert closing == list(
                        range(closing[0], d_p + 1)
                    ), "closing levels are not a suffix at node %d" % node
            # Per-level root test; regions nest, so the closing levels
            # form a suffix [i*, d_p] — close deepest first.
            for level in range(d_p, 0, -1):
                if node_low[level] != dfn[node]:
                    break
                root_slice = gmod[node] & level_mask[level - 1]
                while True:
                    member = stacks[level].pop()
                    stack_level[member] = level - 1
                    gmod[member] |= root_slice
                    counter.bit_vector_steps += 1
                    if member == node:
                        break
            if frames:
                parent = frames[-1][0]
                parent_low = lowlink[parent]
                # Tree edge (parent -> node): exists in problems
                # i <= level(node); merge the child's lowlinks there.
                for level in range(1, levels[node] + 1):
                    if node_low[level] < parent_low[level]:
                        parent_low[level] = node_low[level]
                # Fall-through application of equation (4) on the tree
                # edge, as in the one-level algorithm.
                gmod[parent] |= gmod[node] & below[levels[node]]
                counter.bit_vector_steps += 1

    return NestedGmodResult(kind=kind, gmod=gmod, counter=counter, method="multilevel")
