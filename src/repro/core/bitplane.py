"""Vectorized bit-plane backend for the dense fused phases (DESIGN §13).

The fused solvers' hot loops are mask operations on Python big-ints:
one interpreter dispatch plus one fresh allocation per ``|``/``&`` over
a mask that can be thousands of bits wide.  When the variable universe
is *narrow and interprocedurally shared* — most variables are globals
or formals rather than procedure-private locals — the same solve can be
phrased as whole-array kernels over 2-D NumPy ``uint64`` planes:

* a **plane** is an ``(rows, words)`` array, one row per procedure /
  call site / condensation node, ``words = ceil(width / 64)`` little-
  endian 64-bit limbs per row — exactly the limb layout
  ``int.to_bytes(..., "little")`` produces, so conversion either way is
  a straight memcpy;
* the per-edge ``|=``/``&`` work of a whole topological level of the
  SCC condensation batches into one gather + one grouped OR-reduction
  (``np.bitwise_or.reduceat``) instead of a Python loop;
* the per-site DMOD stitch and the alias-domain intersection become
  single fancy-indexed array expressions over the arena's flat tables.

Counter identity is preserved **exactly**, not approximately: every
tally the big-int fused solvers charge is either structural (RMOD's
``3·Nβ + Eβ``, Figure 2's line 8/17/22 counts, DMOD's
``num_sites``/``total_refs``) or value-dependent in a way this module
reproduces (the reference GMOD solver's per-sweep charges, the alias
factoring's per-hit popcounts).  The two value-dependent cases:

* ``reference`` GMOD: a singleton component is charged its degree
  total for one sweep, plus one more sweep iff its row changed —
  computed vectorized from a changed-rows comparison.  Multi-member
  components run the *exact* big-int Gauss-Seidel loop locally (the
  members' rows are lifted out of the plane, iterated, and written
  back), so sweep counts match the legacy accounting bit for bit.
* ``figure2`` GMOD: the line-17 count depends on DFS edge
  classification, so the backend replays Figure 2's walk structurally
  (``findgmod_fused`` with zero kinds — all mask work vanishes, the
  tallies and the component structure remain) and then computes the
  masks as a vectorized least-fixpoint quotient sweep.  Valid only for
  two-level programs, where Figure 2's output *is* the least fixpoint;
  nested programs shim back to the big-int walk.

The ``multilevel`` and ``per-level`` GMOD methods stay on big-ints
(their per-level lowlink machinery is pointer-chasing, not bulk mask
work); the sparse phases (``IMOD+``'s per-binding scatter) stay on
big-ints by design — the backend seam is per *phase*, not per run.

Backend choice (``backend="auto"``) is per workload *and per phase*:
NumPy pays when the universe is narrow enough that the planes fit a
sane budget and dense enough that big-int rows carry real limb
traffic; it loses on wide-sparse universes (a 120k-variable program
with per-procedure locals makes every plane row ~2 KB of mostly-zero
limbs, while a big-int stops at its highest set bit).  Even where the
gates pass, the mask-bearing phases (GMOD/DMOD/aliases) carry a
mandatory plane→int conversion per result row that CPython's
limb-optimal big-ints never pay, so ``auto`` resolves to the
``"hybrid"`` plan: RMOD — whose packed per-node booleans need *no*
conversion and win 2×+ measured — runs on the plane kernels, the
mask phases stay on big-ints.  An explicit ``backend="numpy"`` runs
every dense phase vectorized (the differential- and profile-visible
full path).  See :func:`auto_backend` / :func:`resolve_backend`.

NumPy itself is an optional extra (``pip install repro[fast]``): when
it is absent every entry point degrades to the big-int path, with a
one-line warning if ``backend="numpy"`` was requested explicitly.
"""

from __future__ import annotations

import os
import warnings
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.bitvec import OpCounter
from repro.core.gmod import findgmod_fused
from repro.core.rmod import RmodResult

try:  # pragma: no cover - exercised via the no-numpy CI leg
    import numpy as _np

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover
    _np = None
    HAVE_NUMPY = False

#: Valid values of the ``backend=`` parameter.
BACKENDS = ("auto", "bigint", "numpy")

#: Resolved execution plans (``summary.backend`` values).  ``"hybrid"``
#: is what ``"auto"`` resolves to when the plane gates pass: RMOD on
#: the vectorized kernels, the mask-bearing phases on big-ints.
BACKEND_PLANS = ("bigint", "numpy", "hybrid")

#: ``auto`` refuses planes wider than this many 64-bit words — beyond
#: it the per-row memory traffic erases the vectorization win and the
#: plane budget explodes (width 65536 bits = 1024 words = 8 KB/row).
AUTO_MAX_WORDS = int(os.environ.get("CK_BITPLANE_MAX_WORDS", "1024"))

#: ``auto`` requires at least this many plane rows (sites + procs) —
#: under it the per-call NumPy dispatch overhead beats the win, and
#: the corpus-sized programs the oracles sweep stay on big-ints.
AUTO_MIN_ROWS = int(os.environ.get("CK_BITPLANE_MIN_ROWS", "2048"))

#: ``auto``'s ceiling on the transient plane footprint in bytes — of
#: the *hybrid* plan ``auto`` actually runs (the RMOD initial-state
#: planes plus the per-node kernel arrays), not the much larger
#: full-``numpy`` footprint :func:`plane_budget_bytes` estimates.
AUTO_BUDGET_BYTES = int(
    os.environ.get("CK_BITPLANE_BUDGET_MB", "256")
) * 1024 * 1024

#: ``auto`` requires this fraction of the universe to be
#: interprocedurally shared (globals + formals).  Procedure-private
#: locals appear in exactly one row each, so a local-dominated universe
#: means wide, mostly-empty plane rows — the big-int representation's
#: home turf.
AUTO_DENSITY_THRESHOLD = float(
    os.environ.get("CK_BITPLANE_DENSITY", "0.5")
)

_warned_unavailable = False


# ---------------------------------------------------------------------------
# Backend choice.
# ---------------------------------------------------------------------------


def shared_density(arena) -> float:
    """Fraction of the variable universe that is interprocedurally
    shared (visible to more than one procedure): globals plus formals.

    The complement — procedure-private locals — contributes exactly one
    plane row's worth of bits per variable, so a low shared fraction
    predicts wide sparse rows where big-ints win.
    """
    universe = arena.universe
    width = universe.size
    if width == 0:
        return 1.0
    private = 0
    for pid in range(len(universe.local_mask)):
        private |= universe.local_mask[pid] & ~universe.formal_mask[pid]
    # main's LOCAL is the global set — globals are shared, not private.
    private &= ~universe.global_mask
    return 1.0 - private.bit_count() / width


def plane_budget_bytes(arena, num_kinds: int) -> int:
    """Estimated transient plane footprint of a full-``numpy`` solve:
    the site planes (DMOD in and out) plus the per-procedure planes
    (IMOD+, GMOD, strip), per kind where a plane is per-kind."""
    words = (arena.width + 63) // 64
    num_sites = len(arena.site_caller)
    num_procs = arena.call_csr.num_nodes
    per_kind_rows = 2 * num_sites + 2 * num_procs
    shared_rows = num_procs  # strip plane, kind-independent
    return (per_kind_rows * num_kinds + shared_rows) * words * 8


def hybrid_budget_bytes(arena, num_kinds: int) -> int:
    """Estimated transient plane footprint of the *hybrid* plan —
    what ``auto`` actually runs.  Hybrid vectorizes only RMOD, whose
    planes are the per-procedure initial-state rows (one plane per
    kind) plus a handful of per-β-node uint64 kernel arrays; the mask
    phases stay on big-ints and allocate nothing."""
    words = (arena.width + 63) // 64
    num_procs = arena.call_csr.num_nodes
    num_nodes = arena.beta_csr.num_nodes
    return num_procs * words * 8 * num_kinds + num_nodes * 8 * 4


def auto_backend(
    arena,
    num_kinds: int,
    *,
    max_words: Optional[int] = None,
    min_rows: Optional[int] = None,
    budget_bytes: Optional[int] = None,
    density_threshold: Optional[float] = None,
) -> str:
    """The measured-density backend choice for one workload.

    The planes win when they are affordable (narrow universe, bounded
    footprint of the hybrid plan ``auto`` runs — see
    :func:`hybrid_budget_bytes` — and enough rows to amortize
    dispatch) *and* the universe is dense in the interprocedural sense
    measured by :func:`shared_density`.  Everything else stays on
    big-ints.
    """
    if not HAVE_NUMPY:
        return "bigint"
    if num_kinds > 64 or num_kinds < 1:
        return "bigint"
    max_words = AUTO_MAX_WORDS if max_words is None else max_words
    min_rows = AUTO_MIN_ROWS if min_rows is None else min_rows
    budget_bytes = AUTO_BUDGET_BYTES if budget_bytes is None else budget_bytes
    density_threshold = (
        AUTO_DENSITY_THRESHOLD if density_threshold is None else density_threshold
    )
    words = (arena.width + 63) // 64
    if words > max_words:
        return "bigint"
    rows = len(arena.site_caller) + arena.call_csr.num_nodes
    if rows < min_rows:
        return "bigint"
    if hybrid_budget_bytes(arena, num_kinds) > budget_bytes:
        return "bigint"
    if shared_density(arena) < density_threshold:
        return "bigint"
    return "numpy"


def resolve_backend(arena, num_kinds: int, backend: str) -> str:
    """Map a requested backend to the execution plan that will run
    (one of :data:`BACKEND_PLANS`).

    ``"numpy"`` runs every dense phase vectorized; ``"auto"`` resolves
    to ``"hybrid"`` when :func:`auto_backend` approves the planes —
    RMOD on the kernels (its K-bit per-node state has the smallest
    lowering cost, and on a warm arena the cached structure makes the
    kernel a clean ~2x win), the mask phases on big-ints — and to
    ``"bigint"`` otherwise.
    """
    global _warned_unavailable
    if backend not in BACKENDS:
        raise ValueError(
            "backend must be one of %s, got %r" % (BACKENDS, backend)
        )
    if backend == "bigint":
        return "bigint"
    if backend == "numpy":
        if not HAVE_NUMPY:
            if not _warned_unavailable:
                _warned_unavailable = True
                warnings.warn(
                    "backend='numpy' requested but NumPy is not installed "
                    "(pip install repro[fast]); falling back to the big-int "
                    "backend",
                    RuntimeWarning,
                    stacklevel=3,
                )
            return "bigint"
        if num_kinds > 64:
            return "bigint"
        return "numpy"
    if auto_backend(arena, num_kinds) == "numpy":
        return "hybrid"
    return "bigint"


# ---------------------------------------------------------------------------
# Plane <-> big-int conversion shims.
# ---------------------------------------------------------------------------


def masks_to_plane(masks: Sequence[int], words: int):
    """Lower a list of big-int masks into a writable ``(rows, words)``
    uint64 plane.  ``int.to_bytes(..., "little")`` emits exactly the
    little-endian limb layout the plane uses, so this is one memcpy
    per row plus one buffer reshape."""
    nbytes = words * 8
    if not masks:
        return _np.zeros((0, words), dtype=_np.uint64)
    buf = b"".join(mask.to_bytes(nbytes, "little") for mask in masks)
    arr = _np.frombuffer(buf, dtype="<u8").reshape(len(masks), words)
    return arr.astype(_np.uint64, copy=True)


def plane_to_masks(plane) -> List[int]:
    """Lift a plane back into per-row big-int masks.

    One memcpy, then one ``int.from_bytes`` per row over a shared
    memoryview — with each row's slice trimmed to its last nonzero
    word (computed vectorized), because ``from_bytes`` cost is linear
    in slice length and most rows populate only their low words (the
    same skew big-ints exploit natively)."""
    np = _np
    rows, words = plane.shape
    if rows == 0:
        return []
    nbytes = words * 8
    contiguous = np.ascontiguousarray(plane, dtype="<u8")
    nonzero = contiguous != 0
    # Last nonzero word + 1 per row; 0 for all-zero rows.
    top = np.where(
        nonzero.any(axis=1), words - np.argmax(nonzero[:, ::-1], axis=1), 0
    )
    ends = (top * 8).tolist()
    view = memoryview(contiguous.tobytes())
    return [
        int.from_bytes(view[index * nbytes : index * nbytes + end], "little")
        for index, end in enumerate(ends)
    ]


def arena_plane_cache(arena) -> Dict:
    """The arena's cache of lowered read-only plane state (input
    planes, levelized condensation structures).  Everything in it is a
    pure function of the arena, so it is safe to keep across analyses —
    the steady-state serving cost of the NumPy backend is the kernels,
    not the lowering.  A mapped arena image pre-populates the input
    planes with zero-copy views (see :mod:`repro.core.arena`)."""
    cache = getattr(arena, "_plane_cache", None)
    if cache is None:
        cache = {}
        arena._plane_cache = cache
    return cache


class PlaneContext:
    """Per-solve plane state shared by the NumPy phases: the universe
    geometry, the strip plane, and the site-local planes — served from
    the arena's plane cache, which a mapped arena image pre-populates
    with zero-copy views over the mapped buffer."""

    def __init__(self, arena, num_kinds: int):
        if not HAVE_NUMPY:
            raise RuntimeError("PlaneContext requires NumPy")
        self.arena = arena
        self.num_kinds = num_kinds
        self.width = arena.width
        self.words = (arena.width + 63) // 64
        self.cache = arena_plane_cache(arena)

    def strip_plane(self):
        """``strip[p]`` per pid as a plane (read-only use)."""
        plane = self.cache.get("strip")
        if plane is None:
            plane = masks_to_plane(self.arena.strip_masks(), self.words)
            self.cache["strip"] = plane
        return plane

    def site_local_plane(self, kind):
        """``LMOD(s)``/``LUSE(s)`` per site as a plane (read-only use)."""
        key = "site_lmod" if kind.value == "mod" else "site_luse"
        plane = self.cache.get(key)
        if plane is None:
            plane = masks_to_plane(self.arena.site_local(kind), self.words)
            self.cache[key] = plane
        return plane


# ---------------------------------------------------------------------------
# Condensation levelization (shared by the RMOD and GMOD kernels).
# ---------------------------------------------------------------------------


def _component_levels(
    num_components: int, esrc: Sequence[int], edst: Sequence[int]
) -> List[int]:
    """Topological level per component: 0 for sinks, else 1 + the max
    level among cross-component successors.

    Relies on the Tarjan close-order invariant every condensation in
    this package satisfies: an edge's target component closes before
    its source component, so target indices never exceed source
    indices and one ascending scan over component indices sees final
    successor levels.
    """
    out: List[List[int]] = [[] for _ in range(num_components)]
    for src, dst in zip(esrc, edst):
        if dst != src:
            out[src].append(dst)
    level = [0] * num_components
    for src in range(num_components):
        best = 0
        for dst in out[src]:
            if level[dst] + 1 > best:
                best = level[dst] + 1
        level[src] = best
    return level


def _grouped_or(plane, contrib, group_starts, group_rows):
    """OR-reduce ``contrib`` rows by group and fold each group's
    reduction into its ``plane`` row."""
    reduced = _np.bitwise_or.reduceat(contrib, group_starts, axis=0)
    plane[group_rows] |= reduced
    return reduced


# ---------------------------------------------------------------------------
# RMOD — Figure 1 as array kernels over the β condensation.
# ---------------------------------------------------------------------------


class _BetaStructure:
    """Cached structural lowering of the β condensation for the RMOD
    sweep: the formal index arrays and, per topological level, the
    edge groups of the leaves-to-roots pass (pure graph structure — no
    mask content)."""

    def __init__(self, arena):
        np = _np
        csr = arena.beta_csr
        num_nodes = csr.num_nodes
        self.num_nodes = num_nodes
        self.formal_pid = np.asarray(arena.beta_formal_pid, dtype=np.int64)
        self.formal_uid = np.asarray(arena.beta_formal_uid, dtype=np.int64)
        self.word_idx = self.formal_uid >> 6
        self.bit_idx = (self.formal_uid & 63).astype(np.uint64)

        component_of, components = arena.beta_condensation()
        self.num_components = len(components)
        self.comp_of = (
            np.asarray(component_of, dtype=np.int64)
            if num_nodes
            else np.zeros(0, dtype=np.int64)
        )
        # Per level: (unique source comps, group starts, edge targets).
        self.level_groups: List[Tuple] = []
        if csr.num_edges:
            esrc_node = np.repeat(
                np.arange(num_nodes, dtype=np.int64),
                np.diff(np.asarray(csr.heads, dtype=np.int64)),
            )
            edst_node = np.asarray(csr.succ, dtype=np.int64)
            esrc = self.comp_of[esrc_node]
            edst = self.comp_of[edst_node]
            level = np.asarray(
                _component_levels(
                    self.num_components, esrc.tolist(), edst.tolist()
                ),
                dtype=np.int64,
            )
            edge_level = level[esrc]
            for lv in range(1, int(level.max()) + 1):
                sel = np.nonzero(edge_level == lv)[0]
                if not sel.size:
                    continue
                lsrc = esrc[sel]
                order = np.argsort(lsrc, kind="stable")
                lsrc = lsrc[order]
                ldst = edst[sel][order]
                starts = np.nonzero(
                    np.concatenate(([True], lsrc[1:] != lsrc[:-1]))
                )[0]
                self.level_groups.append((lsrc[starts], starts, ldst))


def solve_rmod_numpy(
    arena,
    kinds: Sequence,
    counters: Sequence[OpCounter],
) -> Tuple[List[RmodResult], List[int]]:
    """Figure 1 for every kind as vectorized sweeps (the packed K-bit
    per-node state becomes one uint64 scalar array).

    Step (2) is one scattered OR, step (3) one gather + grouped OR per
    topological level of the β condensation, step (4) one gather.  The
    tallies are Figure 1's structural ``3·Nβ + Eβ`` per kind — the
    identical total :func:`repro.core.rmod.solve_rmod_fused` charges.
    """
    np = _np
    resolved = arena.resolved
    local = arena.local
    csr = arena.beta_csr
    num_nodes = csr.num_nodes
    words = (arena.width + 63) // 64
    cache = arena_plane_cache(arena)

    structure = cache.get("beta_structure")
    if structure is None:
        structure = _BetaStructure(arena)
        cache["beta_structure"] = structure
    formal_pid = structure.formal_pid
    formal_uid = structure.formal_uid

    # IMOD(fp) per node, all kinds packed: bit k of node_bits[n].
    node_bits = np.zeros(num_nodes, dtype=np.uint64)
    if num_nodes:
        for k, kind in enumerate(kinds):
            key = "initial_" + kind.value
            init_plane = cache.get(key)
            if init_plane is None:
                init_plane = masks_to_plane(local.initial(kind), words)
                cache[key] = init_plane
            word = init_plane[formal_pid, structure.word_idx]
            bit = (word >> structure.bit_idx) & np.uint64(1)
            node_bits |= bit << np.uint64(k)

    # Steps (1)+(2): representer value = OR of member values over the
    # shared condensation.
    comp_value = np.zeros(structure.num_components, dtype=np.uint64)
    if num_nodes:
        np.bitwise_or.at(comp_value, structure.comp_of, node_bits)

    # Step (3): leaves-to-roots sweep, one gather + grouped OR per
    # topological level (components at one level share no edges).
    for lsrc_unique, starts, ldst in structure.level_groups:
        np.bitwise_or.at(
            comp_value,
            lsrc_unique,
            np.bitwise_or.reduceat(comp_value[ldst], starts),
        )

    # Step (4): copy representer values back to members.
    if num_nodes:
        node_bits = comp_value[structure.comp_of]

    per_kind_steps = 3 * num_nodes + csr.num_edges
    num_procs = resolved.num_procs
    node_bits_list = [int(bits) for bits in node_bits.tolist()]
    results: List[RmodResult] = []
    for k, kind in enumerate(kinds):
        counters[k].single_bit_steps += per_kind_steps
        kind_bit = (node_bits >> np.uint64(k)) & np.uint64(1)
        node_value = kind_bit.astype(bool).tolist()
        proc_mask = [0] * num_procs
        for node in np.nonzero(kind_bit)[0].tolist():
            proc_mask[int(formal_pid[node])] |= 1 << int(formal_uid[node])
        results.append(
            RmodResult(
                kind=kind,
                graph=arena.binding_graph,
                node_value=node_value,
                proc_mask=proc_mask,
                counter=counters[k],
            )
        )
    return results, node_bits_list


# ---------------------------------------------------------------------------
# GMOD — quotient sweep over the call condensation.
# ---------------------------------------------------------------------------


class _QuotientStructure:
    """Levelized view of one call-graph condensation: per topological
    level, the batched edge groups of its singleton components and the
    member/edge lists of its multi-member components."""

    def __init__(self, arena, component_of, components):
        np = _np
        heads = arena.call_csr.heads
        succ = arena.call_csr.succ
        self.num_nodes = arena.call_csr.num_nodes
        self.components = components
        self.component_of = component_of
        num_components = len(components)

        esrc = []
        edst = []
        for node in range(self.num_nodes):
            src_comp = component_of[node]
            for target in succ[heads[node] : heads[node + 1]]:
                esrc.append(src_comp)
                edst.append(component_of[target])
        self.levels = _component_levels(num_components, esrc, edst)
        self.max_level = max(self.levels, default=0)

        # Per level: singleton batch (contiguous per-node edge groups)
        # and the multi-member component indices.
        self.single_edges: Dict[int, Tuple] = {}
        self.single_nodes: Dict[int, object] = {}
        self.single_degrees: Dict[int, object] = {}
        self.multis: Dict[int, List[int]] = {}
        by_level_nodes: Dict[int, List[int]] = {}
        by_level_dst: Dict[int, List[int]] = {}
        by_level_starts: Dict[int, List[int]] = {}
        by_level_deg: Dict[int, List[int]] = {}
        for comp_index, members in enumerate(components):
            lv = self.levels[comp_index]
            if len(members) > 1:
                self.multis.setdefault(lv, []).append(comp_index)
                continue
            node = members[0]
            lo = heads[node]
            hi = heads[node + 1]
            nodes = by_level_nodes.setdefault(lv, [])
            dst = by_level_dst.setdefault(lv, [])
            starts = by_level_starts.setdefault(lv, [])
            deg = by_level_deg.setdefault(lv, [])
            deg.append(hi - lo)
            if hi > lo:
                starts.append(len(dst))
                dst.extend(succ[lo:hi])
                nodes.append(node)
        for lv, nodes in by_level_nodes.items():
            self.single_nodes[lv] = np.asarray(nodes, dtype=np.int64)
            self.single_edges[lv] = (
                np.asarray(by_level_dst[lv], dtype=np.int64),
                np.asarray(by_level_starts[lv], dtype=np.int64),
            )
        for lv, deg in by_level_deg.items():
            self.single_degrees[lv] = deg


def _sweep_singletons(plane_stack, strip_plane, nodes, dst, starts):
    """One batched equation-(4) application for a level's singleton
    components, across **every** kind plane at once.

    ``plane_stack`` is the (kinds × nodes × words) volume from
    :func:`_stack_planes`: the kind axis leads, so one gather and one
    ``reduceat`` replace the former per-plane Python loop.  Returns
    (new, old) of shape (kinds, len(nodes), words) for change
    detection."""
    contrib = plane_stack[:, dst, :] & strip_plane[dst]
    reduced = _np.bitwise_or.reduceat(contrib, starts, axis=1)
    old = plane_stack[:, nodes, :]
    new = old | reduced
    plane_stack[:, nodes, :] = new
    return new, old


def _stack_planes(rows, words):
    """The kind planes as one contiguous (kinds × nodes × words) volume
    plus its per-kind views.  The views write through, so the scalar
    big-int patches (multi-member components) and the stacked singleton
    sweeps see the same memory.  Lowered in one shot — same single copy
    as the per-plane :func:`masks_to_plane` path, not a stack-of-planes
    recopy."""
    if not rows:
        return None, []
    nbytes = words * 8
    buf = b"".join(
        mask.to_bytes(nbytes, "little") for row in rows for mask in row
    )
    stacked = (
        _np.frombuffer(buf, dtype="<u8")
        .reshape(len(rows), len(rows[0]), words)
        .astype(_np.uint64, copy=True)
    )
    return stacked, [stacked[k] for k in range(len(rows))]


def _solve_reference_component(
    planes, arena, members, strip_ints, counters=None
) -> None:
    """The reference solver's exact big-int Gauss-Seidel loop for one
    multi-member component, lifted out of the planes and written back —
    sweep counts (and therefore charges) match the legacy accounting
    exactly because it *is* the legacy loop.  ``counters=None`` runs
    the same schedule without charging (the figure2 path: its tallies
    come from the structural walk)."""
    np = _np
    heads = arena.call_csr.heads
    succ = arena.call_csr.succ
    num_kinds = len(planes)
    member_set = set(members)
    externals = set()
    degree_total = 0
    for node in members:
        lo = heads[node]
        hi = heads[node + 1]
        degree_total += hi - lo
        for target in succ[lo:hi]:
            if target not in member_set:
                externals.add(target)

    values: List[Dict[int, int]] = []
    for plane in planes:
        vals: Dict[int, int] = {}
        for node in members:
            vals[node] = int.from_bytes(
                np.ascontiguousarray(plane[node], dtype="<u8").tobytes(),
                "little",
            )
        for node in externals:
            vals[node] = int.from_bytes(
                np.ascontiguousarray(plane[node], dtype="<u8").tobytes(),
                "little",
            )
        values.append(vals)

    active = list(range(num_kinds))
    while active:
        still = []
        for k in active:
            vals = values[k]
            changed = False
            for node in members:
                value = vals[node]
                for target in succ[heads[node] : heads[node + 1]]:
                    value |= vals[target] & strip_ints[target]
                if value != vals[node]:
                    vals[node] = value
                    changed = True
            if counters is not None:
                counters[k].bit_vector_steps += degree_total
            if changed:
                still.append(k)
        active = still

    words = planes[0].shape[1]
    for k, plane in enumerate(planes):
        vals = values[k]
        for node in members:
            plane[node] = np.frombuffer(
                vals[node].to_bytes(words * 8, "little"), dtype="<u8"
            )


def solve_gmod_figure2_numpy(
    ctx: PlaneContext,
    imod_plus_rows: Sequence[Sequence[int]],
    num_kinds: int,
    counters: Sequence[OpCounter],
):
    """Figure 2 with vectorized masks: the walk runs once *structurally*
    (zero kinds — edge classification and the line 8/17/22 tallies are
    mask-independent), then the masks are computed as a least-fixpoint
    quotient sweep over the walk's components.

    Two-level programs only (the only programs the figure2 method is
    defined for): there Figure 2's output equals equation (4)'s least
    fixpoint, which is what the sweep computes.  The structural walk
    registers the same single condensation-equivalent pass the big-int
    walk would.
    """
    arena = ctx.arena
    structure = findgmod_fused(arena, [], 0, [])
    total = (
        structure.line8_count + structure.line17_count + structure.line22_count
    )
    for counter in counters:
        counter.bit_vector_steps += total

    quotient = ctx.cache.get("quotient_figure2")
    if quotient is None:
        component_of = structure.component_of
        num_components = max(component_of) + 1 if component_of else 0
        components: List[List[int]] = [[] for _ in range(num_components)]
        for node, comp_index in enumerate(component_of):
            components[comp_index].append(node)
        quotient = _QuotientStructure(arena, component_of, components)
        ctx.cache["quotient_figure2"] = quotient

    strip_plane = ctx.strip_plane()
    strip_ints = arena.strip_masks()
    stacked, planes = _stack_planes(imod_plus_rows, ctx.words)
    for lv in range(quotient.max_level + 1):
        edges = quotient.single_edges.get(lv)
        if edges is not None:
            dst, starts = edges
            nodes = quotient.single_nodes[lv]
            _sweep_singletons(stacked, strip_plane, nodes, dst, starts)
        for comp_index in quotient.multis.get(lv, ()):
            _solve_reference_component(
                planes, arena, quotient.components[comp_index], strip_ints
            )
    return planes


def solve_gmod_reference_numpy(
    ctx: PlaneContext,
    imod_plus_rows: Sequence[Sequence[int]],
    num_kinds: int,
    counters: Sequence[OpCounter],
):
    """The reference equation-(4) fixpoint with vectorized masks and
    the legacy solver's exact value-dependent charges.

    Uses the arena's cached call condensation (same warm/cold
    accounting as the big-int reference solver).  Singleton components
    charge ``degree × (1 + changed)`` per kind — the legacy loop's one
    guaranteed sweep plus the one extra no-change sweep a changed row
    buys.  Multi-member components run the legacy loop verbatim (see
    :func:`_solve_reference_component`).
    """
    np = _np
    arena = ctx.arena
    num_nodes = arena.call_csr.num_nodes
    for counter in counters:
        counter.bit_vector_steps += num_nodes

    component_of, components = arena.call_condensation()
    quotient = ctx.cache.get("quotient_call")
    if quotient is None:
        quotient = _QuotientStructure(arena, component_of, components)
        ctx.cache["quotient_call"] = quotient
    strip_plane = ctx.strip_plane()
    strip_ints = arena.strip_masks()
    stacked, planes = _stack_planes(imod_plus_rows, ctx.words)

    for lv in range(quotient.max_level + 1):
        edges = quotient.single_edges.get(lv)
        if edges is not None:
            dst, starts = edges
            nodes = quotient.single_nodes[lv]
            degrees = (
                np.asarray(np.diff(np.append(starts, len(dst))))
                if len(starts)
                else np.zeros(0, dtype=np.int64)
            )
            new, old = _sweep_singletons(
                stacked, strip_plane, nodes, dst, starts
            )
            # Change rows per (kind, node); the per-kind charge is the
            # legacy loop's exact ``degree × (1 + changed)``.
            changed = np.any(new != old, axis=2)
            degree_sum = int(degrees.sum())
            for k in range(len(planes)):
                counters[k].bit_vector_steps += degree_sum + int(
                    degrees[changed[k]].sum()
                )
        # Zero-degree singletons: the legacy loop runs one sweep that
        # cannot change anything and charges degree_total == 0 — no
        # work to mirror.
        for comp_index in quotient.multis.get(lv, ()):
            _solve_reference_component(
                planes,
                arena,
                quotient.components[comp_index],
                strip_ints,
                counters,
            )
    return planes


def solve_gmod_numpy(
    ctx: PlaneContext,
    method: str,
    imod_plus_rows: Sequence[Sequence[int]],
    num_kinds: int,
    counters: Sequence[OpCounter],
):
    """GMOD under the NumPy backend: vectorized for ``figure2`` (on
    two-level programs) and ``reference``; the multi-level methods (and
    figure2 on nested programs) shim to the big-int fused solvers —
    their cost is per-level pointer work, not bulk mask work.

    Returns ``(gmod_planes, gmod_rows)``: the planes feed the DMOD
    stitch, the big-int rows feed the summary.
    """
    arena = ctx.arena
    if method == "figure2" and arena.resolved.max_nesting_level <= 1:
        planes = solve_gmod_figure2_numpy(
            ctx, imod_plus_rows, num_kinds, counters
        )
        return planes, [plane_to_masks(plane) for plane in planes]
    if method == "reference":
        planes = solve_gmod_reference_numpy(
            ctx, imod_plus_rows, num_kinds, counters
        )
        return planes, [plane_to_masks(plane) for plane in planes]

    # Shim: big-int GMOD, planes lowered from the resulting rows.
    from repro.core.gmod_nested import (
        findgmod_multilevel_fused,
        findgmod_per_level_fused,
        solve_equation4_reference_fused,
    )

    if method == "figure2":
        rows = findgmod_fused(arena, imod_plus_rows, num_kinds, counters).gmod
    elif method == "multilevel":
        rows = findgmod_multilevel_fused(
            arena, imod_plus_rows, num_kinds, counters
        )
    elif method == "per-level":
        rows = findgmod_per_level_fused(
            arena, imod_plus_rows, num_kinds, counters
        )
    elif method == "reference":  # pragma: no cover - handled above
        rows = solve_equation4_reference_fused(
            arena, imod_plus_rows, num_kinds, counters
        )
    else:
        raise ValueError("unknown GMOD method %r" % method)
    return [masks_to_plane(row, ctx.words) for row in rows], [
        list(row) for row in rows
    ]


# ---------------------------------------------------------------------------
# DMOD — the per-site stitch as gathers and one bit scatter.
# ---------------------------------------------------------------------------


def compute_dmod_numpy(
    ctx: PlaneContext,
    gmod_planes,
    kinds: Sequence,
    counters: Sequence[OpCounter],
):
    """Equation (2) for every site and kind as three array expressions:
    the pass-through term is a fancy gather of ``GMOD & strip`` rows by
    callee, the local term one plane OR, and the by-reference formal
    tests one word-gather + shift with a scattered single-bit OR back.

    Charges the structural legacy tallies: ``num_sites`` bit-vector
    steps and ``total_refs`` single-bit steps per kind.
    """
    np = _np
    arena = ctx.arena
    num_sites = len(arena.site_callee)
    strip_plane = ctx.strip_plane()
    total_refs = len(arena.ref_base_uid)

    refs = ctx.cache.get("ref_structure")
    if refs is None:
        site_callee = np.asarray(arena.site_callee, dtype=np.int64)
        refs = {"site_callee": site_callee}
        if total_refs:
            ref_formal_uid = np.asarray(arena.ref_formal_uid, dtype=np.int64)
            ref_base_uid = np.asarray(arena.ref_base_uid, dtype=np.int64)
            ref_site = np.repeat(
                np.arange(num_sites, dtype=np.int64),
                np.diff(np.asarray(arena.site_ref_heads, dtype=np.int64)),
            )
            refs["ref_site"] = ref_site
            refs["ref_callee"] = site_callee[ref_site]
            refs["formal_word"] = ref_formal_uid >> 6
            refs["formal_bit"] = (ref_formal_uid & 63).astype(np.uint64)
            refs["base_word"] = ref_base_uid >> 6
            refs["base_bit"] = (ref_base_uid & 63).astype(np.uint64)
        ctx.cache["ref_structure"] = refs
    site_callee = refs["site_callee"]
    if total_refs:
        ref_site = refs["ref_site"]
        ref_callee = refs["ref_callee"]
        formal_word = refs["formal_word"]
        formal_bit = refs["formal_bit"]
        base_word = refs["base_word"]
        base_bit = refs["base_bit"]

    dmod_planes = []
    for k, kind in enumerate(kinds):
        gmod_plane = gmod_planes[k]
        pass_plane = gmod_plane & strip_plane
        dmod_plane = ctx.site_local_plane(kind) | pass_plane[site_callee]
        if total_refs:
            formal_set = (
                gmod_plane[ref_callee, formal_word] >> formal_bit
            ) & np.uint64(1)
            sel = np.nonzero(formal_set)[0]
            if sel.size:
                np.bitwise_or.at(
                    dmod_plane,
                    (ref_site[sel], base_word[sel]),
                    np.uint64(1) << base_bit[sel],
                )
        dmod_planes.append(dmod_plane)
        counters[k].bit_vector_steps += num_sites
        counters[k].single_bit_steps += total_refs
    return dmod_planes


# ---------------------------------------------------------------------------
# Alias factoring — domain intersection as one plane AND.
# ---------------------------------------------------------------------------


def factor_aliases_numpy(
    ctx: PlaneContext,
    dmod_planes,
    dmod_rows: Sequence[Sequence[int]],
    aliases,
    num_kinds: int,
    counters: Sequence[OpCounter],
) -> List[List[int]]:
    """Section 5 step (2): the hit detection (``DMOD(s) ∩ domain``) and
    the per-hit popcount charge run vectorized over all sites whose
    caller has alias pairs at all; only the (typically rare) sites with
    actual hits fall back to the big-int partner expansion.

    Charges ``hits.bit_count()`` bit-vector steps per non-empty hit
    set, per kind — the legacy tally, computed as a bulk
    ``np.bitwise_count`` sum.
    """
    np = _np
    arena = ctx.arena
    domains = aliases.domains()
    partner_mask = aliases.partner_mask
    result = [list(row) for row in dmod_rows]

    nonzero_pids = [pid for pid, domain in enumerate(domains) if domain]
    if not nonzero_pids:
        return result
    compact_of = np.full(len(domains), -1, dtype=np.int64)
    for index, pid in enumerate(nonzero_pids):
        compact_of[pid] = index
    domain_plane = masks_to_plane(
        [domains[pid] for pid in nonzero_pids], ctx.words
    )

    site_caller = np.asarray(arena.site_caller, dtype=np.int64)
    site_compact = compact_of[site_caller]
    sel_sites = np.nonzero(site_compact >= 0)[0]
    if not sel_sites.size:
        return result
    sel_domains = domain_plane[site_compact[sel_sites]]

    for k in range(num_kinds):
        hits_plane = dmod_planes[k][sel_sites] & sel_domains
        counts = np.bitwise_count(hits_plane).sum(axis=1, dtype=np.int64)
        counters[k].bit_vector_steps += int(counts.sum())
        hit_rows = np.nonzero(counts)[0]
        if not hit_rows.size:
            continue
        row = result[k]
        for index in hit_rows.tolist():
            sid = int(sel_sites[index])
            caller_pid = int(site_caller[sid])
            partners = partner_mask[caller_pid]
            hits = int.from_bytes(
                np.ascontiguousarray(
                    hits_plane[index], dtype="<u8"
                ).tobytes(),
                "little",
            )
            expanded = row[sid]
            while hits:
                low = hits & -hits
                expanded |= partners[low.bit_length() - 1]
                hits ^= low
            row[sid] = expanded
    return result
