"""The paper's contribution: linear-time alias-free flow-insensitive
side-effect analysis.

Modules mirror the paper's decomposition:

* :mod:`repro.core.local` — ``LMOD``/``LUSE`` per statement and
  ``IMOD``/``IUSE`` per procedure, with the Section 3.3 nesting
  extension;
* :mod:`repro.core.rmod` — ``RMOD``/``RUSE`` over the binding
  multi-graph (Figure 1);
* :mod:`repro.core.imod_plus` — equation (5);
* :mod:`repro.core.gmod` — ``findgmod`` (Figure 2, Theorems 1 and 2);
* :mod:`repro.core.gmod_nested` — the Section 4 multi-level nesting
  extension;
* :mod:`repro.core.dmod` — equation (2), per-call-site direct sets;
* :mod:`repro.core.aliases` — Banning-style alias pairs and the
  Section 5 ``DMOD`` → ``MOD`` step;
* :mod:`repro.core.pipeline` — the end-to-end driver producing a
  :class:`repro.core.summary.SideEffectSummary`.
"""

from repro.core.varsets import VariableUniverse, EffectKind
from repro.core.pipeline import analyze_side_effects
from repro.core.summary import SideEffectSummary

__all__ = [
    "VariableUniverse",
    "EffectKind",
    "analyze_side_effects",
    "SideEffectSummary",
]
