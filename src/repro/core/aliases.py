"""Alias-pair analysis and the final ``DMOD`` → ``MOD`` step (Section 5).

The paper's algorithm is *alias-free*: aliasing is "ignored until late
in the computation; the method assumes that simple sets of alias pairs
are available for each procedure".  This module supplies those sets
with the classical Banning-style flow-insensitive computation for
languages whose only aliasing mechanism is reference-parameter passing:

``ALIAS(q)`` (pairs that may hold on entry to ``q``) is the least
fixpoint of the introduction rules over all call sites ``e = (p, q)``
with by-reference bindings ``a_i ↦ f_i``:

1. ``a_i`` and ``a_j`` are the same variable (``i ≠ j``)
   → ``⟨f_i, f_j⟩``;
2. ``⟨a_i, a_j⟩ ∈ ALIAS(p)``            → ``⟨f_i, f_j⟩``;
3. ``a_i = v`` and ``v`` is still *extant* inside ``q``
   (a global, or a variable of one of ``q``'s lexical ancestors —
   extant rather than name-visible, because shadowing hides a name
   without deallocating the instance) → ``⟨f_i, v⟩``;
4. ``⟨a_i, v⟩ ∈ ALIAS(p)`` and ``v`` extant inside ``q``
   → ``⟨f_i, v⟩``;
5. (lexical nesting) ``ALIAS(q) ⊇ ALIAS(parent(q))`` — a pair that may
   hold on entry to the enclosing procedure still holds, for the
   statically-linked instances, when a nested procedure is entered.

Then, per the paper's step (2)::

    ∀ x ∈ DMOD(s):  if ⟨x, y⟩ ∈ ALIAS(p)  then  add y to MOD(s)

one introduction step, not a transitive closure — exactly as stated.
The cost of both phases is linear in the number of alias pairs, which
the paper notes is unavoidable for any summary computation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.core.bitvec import OpCounter
from repro.core.varsets import VariableUniverse
from repro.lang.symbols import ProcSymbol, ResolvedProgram, VarSymbol

Pair = FrozenSet[int]  # A pair of variable uids (frozenset of size 2).


def _pair(a: int, b: int) -> Pair:
    return frozenset((a, b))


@dataclass
class AliasResult:
    """``ALIAS(p)`` for every procedure, as sets of uid pairs."""

    resolved: ResolvedProgram
    pairs: List[Set[Pair]]
    #: Per pid: uid -> mask of uids it may be aliased to on entry.
    partner_mask: List[Dict[int, int]] = field(default_factory=list)

    def pairs_of(self, proc: ProcSymbol) -> Set[Pair]:
        return self.pairs[proc.pid]

    def total_pairs(self) -> int:
        return sum(len(pair_set) for pair_set in self.pairs)

    def may_alias(self, proc: ProcSymbol, a: VarSymbol, b: VarSymbol) -> bool:
        return _pair(a.uid, b.uid) in self.pairs[proc.pid]


def compute_aliases(
    resolved: ResolvedProgram,
    universe: VariableUniverse,
    counter: Optional[OpCounter] = None,
    initial_pairs: Optional[List[Set[Pair]]] = None,
    seed_pids: Optional[List[int]] = None,
) -> AliasResult:
    """Fixpoint of the introduction rules over the call multi-graph.

    ``initial_pairs``/``seed_pids`` support warm starts for incremental
    re-analysis: pair sets known to be final may be pre-seeded and the
    worklist restricted to the procedures whose contributions may have
    changed (the caller is responsible for the region argument — see
    :mod:`repro.core.incremental`).  Pre-seeded values must be *subsets
    or exact*: the rules only ever add pairs.
    """
    if counter is None:
        counter = OpCounter()
    num_procs = resolved.num_procs
    if initial_pairs is not None:
        pairs = [set(pair_set) for pair_set in initial_pairs]
    else:
        pairs = [set() for _ in range(num_procs)]
    sites_by_caller: List[List] = [[] for _ in range(num_procs)]
    for site in resolved.call_sites:
        sites_by_caller[site.caller.pid].append(site)

    extant_uid_mask: List[int] = [universe.extant_mask(p) for p in resolved.procs]

    # Worklist of pids whose ALIAS set changed (all procs first: rules
    # 1 and 3 fire without any caller pairs).
    if seed_pids is not None:
        worklist = list(seed_pids)
        queued = [False] * num_procs
        for pid in worklist:
            queued[pid] = True
    else:
        worklist = list(range(num_procs))
        queued = [True] * num_procs
    while worklist:
        caller_pid = worklist.pop()
        queued[caller_pid] = False
        # Rule 5: nested procedures inherit the enclosing procedure's
        # pairs (every member is still extant one level down).
        for nested in resolved.procs[caller_pid].nested:
            new_pairs = pairs[caller_pid] - pairs[nested.pid]
            if new_pairs:
                pairs[nested.pid] |= new_pairs
                if not queued[nested.pid]:
                    queued[nested.pid] = True
                    worklist.append(nested.pid)
        # Snapshot: on self-recursive sites the caller's and callee's
        # pair sets are the same object, and rule 4 iterates one while
        # inserting into the other.  New pairs are picked up by the
        # worklist requeue.
        caller_pairs = set(pairs[caller_pid])
        for site in sites_by_caller[caller_pid]:
            callee = site.callee
            callee_pid = callee.pid
            callee_extant = extant_uid_mask[callee_pid]
            ref = [
                (callee.formals[b.position], b.base)
                for b in site.bindings
                if b.by_reference
            ]
            added = False
            for index, (formal_i, actual_i) in enumerate(ref):
                # Rule 3: actual still visible inside the callee.
                if (callee_extant >> actual_i.uid) & 1:
                    new = _pair(formal_i.uid, actual_i.uid)
                    if len(new) == 2 and new not in pairs[callee_pid]:
                        pairs[callee_pid].add(new)
                        added = True
                # Rules 1 and 2: two actuals aliased in the caller.
                for formal_j, actual_j in ref[index + 1:]:
                    same = actual_i is actual_j
                    known = _pair(actual_i.uid, actual_j.uid) in caller_pairs
                    if same or known:
                        new = _pair(formal_i.uid, formal_j.uid)
                        if len(new) == 2 and new not in pairs[callee_pid]:
                            pairs[callee_pid].add(new)
                            added = True
                # Rule 4: actual aliased in the caller to a variable
                # still visible inside the callee.
                for pair in caller_pairs:
                    if actual_i.uid in pair:
                        other = next(iter(pair - {actual_i.uid}), None)
                        if other is None:
                            continue
                        if (callee_extant >> other) & 1:
                            new = _pair(formal_i.uid, other)
                            if len(new) == 2 and new not in pairs[callee_pid]:
                                pairs[callee_pid].add(new)
                                added = True
            if added and not queued[callee_pid]:
                queued[callee_pid] = True
                worklist.append(callee_pid)

    partner_mask: List[Dict[int, int]] = []
    for pid in range(num_procs):
        partners: Dict[int, int] = {}
        for pair in pairs[pid]:
            a, b = tuple(pair)
            partners[a] = partners.get(a, 0) | (1 << b)
            partners[b] = partners.get(b, 0) | (1 << a)
        partner_mask.append(partners)
    return AliasResult(resolved=resolved, pairs=pairs, partner_mask=partner_mask)


def factor_aliases_into(
    dmod_masks: Sequence[int],
    aliases: AliasResult,
    resolved: ResolvedProgram,
    counter: Optional[OpCounter] = None,
) -> List[int]:
    """Section 5 step (2): ``MOD(s)`` from ``DMOD(s)`` and the caller's
    alias pairs (one expansion step, as the paper specifies)."""
    if counter is None:
        counter = OpCounter()
    result: List[int] = []
    for site in resolved.call_sites:
        mask = dmod_masks[site.site_id]
        partners = aliases.partner_mask[site.caller.pid]
        expanded = mask
        for uid, partner in partners.items():
            if (mask >> uid) & 1:
                expanded |= partner
                counter.bit_vector_steps += 1
        result.append(expanded)
    return result
