"""Alias-pair analysis and the final ``DMOD`` → ``MOD`` step (Section 5).

The paper's algorithm is *alias-free*: aliasing is "ignored until late
in the computation; the method assumes that simple sets of alias pairs
are available for each procedure".  This module supplies those sets
with the classical Banning-style flow-insensitive computation for
languages whose only aliasing mechanism is reference-parameter passing:

``ALIAS(q)`` (pairs that may hold on entry to ``q``) is the least
fixpoint of the introduction rules over all call sites ``e = (p, q)``
with by-reference bindings ``a_i ↦ f_i``:

1. ``a_i`` and ``a_j`` are the same variable (``i ≠ j``)
   → ``⟨f_i, f_j⟩``;
2. ``⟨a_i, a_j⟩ ∈ ALIAS(p)``            → ``⟨f_i, f_j⟩``;
3. ``a_i = v`` and ``v`` is still *extant* inside ``q``
   (a global, or a variable of one of ``q``'s lexical ancestors —
   extant rather than name-visible, because shadowing hides a name
   without deallocating the instance) → ``⟨f_i, v⟩``;
4. ``⟨a_i, v⟩ ∈ ALIAS(p)`` and ``v`` extant inside ``q``
   → ``⟨f_i, v⟩``;
5. (lexical nesting) ``ALIAS(q) ⊇ ALIAS(parent(q))`` — a pair that may
   hold on entry to the enclosing procedure still holds, for the
   statically-linked instances, when a nested procedure is entered.

Then, per the paper's step (2)::

    ∀ x ∈ DMOD(s):  if ⟨x, y⟩ ∈ ALIAS(p)  then  add y to MOD(s)

one introduction step, not a transitive closure — exactly as stated.
The cost of both phases is linear in the number of alias pairs, which
the paper notes is unavoidable for any summary computation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.core.bitvec import OpCounter, mask_of
from repro.core.varsets import VariableUniverse
from repro.lang.symbols import ProcSymbol, ResolvedProgram, VarSymbol

Pair = FrozenSet[int]  # A pair of variable uids (frozenset of size 2).


def _pair(a: int, b: int) -> Pair:
    return frozenset((a, b))


@dataclass
class AliasResult:
    """``ALIAS(p)`` for every procedure, as sets of uid pairs."""

    resolved: ResolvedProgram
    pairs: List[Set[Pair]]
    #: Per pid: uid -> mask of uids it may be aliased to on entry.
    partner_mask: List[Dict[int, int]] = field(default_factory=list)
    #: Per pid: mask of uids that have at least one alias partner (the
    #: key set of ``partner_mask[pid]`` as a mask).  Lets the factoring
    #: step detect "no pair of this set is aliased" with one AND.
    domain_mask: List[int] = field(default_factory=list)

    def pairs_of(self, proc: ProcSymbol) -> Set[Pair]:
        return self.pairs[proc.pid]

    def total_pairs(self) -> int:
        return sum(len(pair_set) for pair_set in self.pairs)

    def may_alias(self, proc: ProcSymbol, a: VarSymbol, b: VarSymbol) -> bool:
        return _pair(a.uid, b.uid) in self.pairs[proc.pid]

    def domains(self) -> List[int]:
        """``domain_mask``, derived from ``partner_mask`` when this
        result was built by hand (tests construct AliasResult directly)."""
        if not self.domain_mask and self.partner_mask:
            self.domain_mask = [
                mask_of(partners.keys()) for partners in self.partner_mask
            ]
        return self.domain_mask


def compute_aliases(
    resolved: ResolvedProgram,
    universe: VariableUniverse,
    counter: Optional[OpCounter] = None,
    initial_pairs: Optional[List[Set[Pair]]] = None,
    seed_pids: Optional[List[int]] = None,
) -> AliasResult:
    """Fixpoint of the introduction rules over the call multi-graph.

    ``initial_pairs``/``seed_pids`` support warm starts for incremental
    re-analysis: pair sets known to be final may be pre-seeded and the
    worklist restricted to the procedures whose contributions may have
    changed (the caller is responsible for the region argument — see
    :mod:`repro.core.incremental`).  Pre-seeded values must be *subsets
    or exact*: the rules only ever add pairs.
    """
    if counter is None:
        counter = OpCounter()
    num_procs = resolved.num_procs
    if initial_pairs is not None:
        pairs = [set(pair_set) for pair_set in initial_pairs]
    else:
        pairs = [set() for _ in range(num_procs)]

    # The pair sets are mirrored into per-procedure partner masks
    # (uid -> mask of alias partners) and a domain mask (the key set as
    # a mask), maintained incrementally.  Membership tests and rule 4's
    # "every caller pair containing actual_i" become single AND/shift
    # operations instead of scans over the whole pair set — that scan
    # made the fixpoint quadratic in the pair count.
    partner_mask: List[Dict[int, int]] = [{} for _ in range(num_procs)]
    domain_mask: List[int] = [0] * num_procs
    for pid in range(num_procs):
        partners = partner_mask[pid]
        for pair in pairs[pid]:
            a, b = tuple(pair)
            partners[a] = partners.get(a, 0) | (1 << b)
            partners[b] = partners.get(b, 0) | (1 << a)
            domain_mask[pid] |= (1 << a) | (1 << b)

    def _add_pair(pid: int, a: int, b: int) -> None:
        pairs[pid].add(frozenset((a, b)))
        partners = partner_mask[pid]
        partners[a] = partners.get(a, 0) | (1 << b)
        partners[b] = partners.get(b, 0) | (1 << a)
        domain_mask[pid] |= (1 << a) | (1 << b)

    # Per-site by-reference bindings as uid pairs, derived once — the
    # worklist revisits a caller many times and the formal/base symbols
    # never change.
    sites_by_caller: List[List] = [[] for _ in range(num_procs)]
    for site in resolved.call_sites:
        callee = site.callee
        ref = [
            (callee.formals[b.position].uid, b.base.uid)
            for b in site.bindings
            if b.by_reference
        ]
        sites_by_caller[site.caller.pid].append((callee.pid, ref))

    extant_uid_mask: List[int] = [universe.extant_mask(p) for p in resolved.procs]

    # Worklist of pids whose ALIAS set changed (all procs first: rules
    # 1 and 3 fire without any caller pairs).
    if seed_pids is not None:
        worklist = list(seed_pids)
        queued = [False] * num_procs
        for pid in worklist:
            queued[pid] = True
    else:
        worklist = list(range(num_procs))
        queued = [True] * num_procs
    while worklist:
        caller_pid = worklist.pop()
        queued[caller_pid] = False
        # Rule 5: nested procedures inherit the enclosing procedure's
        # pairs (every member is still extant one level down).
        for nested in resolved.procs[caller_pid].nested:
            new_pairs = pairs[caller_pid] - pairs[nested.pid]
            if new_pairs:
                for pair in new_pairs:
                    a, b = tuple(pair)
                    _add_pair(nested.pid, a, b)
                if not queued[nested.pid]:
                    queued[nested.pid] = True
                    worklist.append(nested.pid)
        # Snapshot: on self-recursive sites the caller's and callee's
        # partner tables are the same object, and rules 2/4 read one
        # while rule insertions grow the other.  New pairs are picked
        # up by the worklist requeue.
        caller_partners = dict(partner_mask[caller_pid])
        for callee_pid, ref in sites_by_caller[caller_pid]:
            callee_extant = extant_uid_mask[callee_pid]
            callee_partners = partner_mask[callee_pid]
            added = False
            for index, (formal_uid, actual_uid) in enumerate(ref):
                formal_partners = callee_partners.get(formal_uid, 0)
                # Rule 3: actual still extant inside the callee.
                if (
                    (callee_extant >> actual_uid) & 1
                    and actual_uid != formal_uid
                    and not (formal_partners >> actual_uid) & 1
                ):
                    _add_pair(callee_pid, formal_uid, actual_uid)
                    formal_partners |= 1 << actual_uid
                    added = True
                aliased_to_actual = caller_partners.get(actual_uid, 0)
                # Rules 1 and 2: two actuals aliased in the caller.
                for formal_j_uid, actual_j_uid in ref[index + 1:]:
                    same = actual_uid == actual_j_uid
                    known = (aliased_to_actual >> actual_j_uid) & 1
                    if (same or known) and formal_uid != formal_j_uid:
                        if not (formal_partners >> formal_j_uid) & 1:
                            _add_pair(callee_pid, formal_uid, formal_j_uid)
                            formal_partners |= 1 << formal_j_uid
                            added = True
                # Rule 4: actual aliased in the caller to a variable
                # still extant inside the callee.  One AND finds every
                # candidate; only genuinely new pairs are walked.
                new_bits = (
                    aliased_to_actual
                    & callee_extant
                    & ~formal_partners
                    & ~(1 << formal_uid)
                )
                while new_bits:
                    low = new_bits & -new_bits
                    other = low.bit_length() - 1
                    _add_pair(callee_pid, formal_uid, other)
                    formal_partners |= low
                    new_bits ^= low
                    added = True
            if added and not queued[callee_pid]:
                queued[callee_pid] = True
                worklist.append(callee_pid)

    return AliasResult(
        resolved=resolved,
        pairs=pairs,
        partner_mask=partner_mask,
        domain_mask=domain_mask,
    )


class LazyPartnerTables:
    """A list-like view of per-procedure partner tables, materialized
    per pid on first access from the backing pair sets.

    The incremental alias path carries final pair sets forward by
    reference; rebuilding every partner table eagerly costs more than
    the whole warm fixpoint (each entry is a big-int of universe
    width), while only the procedures the worklist or the per-site
    factoring actually touches need one.  Entries for procedures whose
    pairs are re-derived are written through :meth:`materialize` before
    mutation, so shared state is never modified.
    """

    def __init__(self, pairs: List[Set[Pair]]):
        self._pairs = pairs
        self._tables: Dict[int, Dict[int, int]] = {}

    def __len__(self) -> int:
        return len(self._pairs)

    def __getitem__(self, pid: int) -> Dict[int, int]:
        table = self._tables.get(pid)
        if table is None:
            table = {}
            for pair in self._pairs[pid]:
                a, b = tuple(pair)
                table[a] = table.get(a, 0) | (1 << b)
                table[b] = table.get(b, 0) | (1 << a)
            self._tables[pid] = table
        return table

    def materialize(self, pid: int, table: Dict[int, int]) -> None:
        self._tables[pid] = table


def compute_aliases_incremental(
    arena,
    carried_pairs: List[Optional[Set[Pair]]],
    carried_domains: Sequence[int],
    seed_pids: List[int],
    counter: Optional[OpCounter] = None,
) -> AliasResult:
    """Warm alias fixpoint with structural sharing of final pair sets.

    ``carried_pairs[pid]`` is the previous version's final pair set for
    a procedure outside the forward-affected region — shared **by
    reference**, never copied: pairs flow caller → callee and parent →
    nested, so a procedure not forward-reachable from any edit has no
    path from a changed contribution and its set is already the least
    fixpoint.  Region procedures pass ``None`` and are re-derived from
    scratch (which is what makes shrinking edits exact).  Valid only
    when the uid space is unchanged; the caller falls back to
    :func:`compute_aliases` with remapped initial pairs otherwise.

    The result is value-identical to a from-scratch
    :func:`compute_aliases` — the least fixpoint is unique and every
    carried set already holds its final value.
    """
    if counter is None:
        counter = OpCounter()
    resolved = arena.resolved
    universe = arena.universe
    num_procs = resolved.num_procs

    pairs: List[Set[Pair]] = [
        set() if carried is None else carried for carried in carried_pairs
    ]
    partner_mask = LazyPartnerTables(pairs)
    domain_mask: List[int] = [
        0 if carried_pairs[pid] is None else carried_domains[pid]
        for pid in range(num_procs)
    ]

    def _add_pair(pid: int, a: int, b: int) -> None:
        pairs[pid].add(frozenset((a, b)))
        partners = partner_mask[pid]
        partners[a] = partners.get(a, 0) | (1 << b)
        partners[b] = partners.get(b, 0) | (1 << a)
        domain_mask[pid] |= (1 << a) | (1 << b)

    # Per-caller site decode, lazily, from the arena's flat tables —
    # the worklist only ever touches the region and its frontier.
    site_callee = arena.site_callee
    ref_heads = arena.site_ref_heads
    ref_formal_uid = arena.ref_formal_uid
    ref_base_uid = arena.ref_base_uid
    by_caller: List[List[int]] = [[] for _ in range(num_procs)]
    for sid, caller_pid in enumerate(arena.site_caller):
        by_caller[caller_pid].append(sid)
    site_cache: Dict[int, List] = {}

    def _sites_of(pid: int) -> List:
        cached = site_cache.get(pid)
        if cached is None:
            cached = []
            for sid in by_caller[pid]:
                ref = [
                    (ref_formal_uid[r], ref_base_uid[r])
                    for r in range(ref_heads[sid], ref_heads[sid + 1])
                ]
                cached.append((site_callee[sid], ref))
            site_cache[pid] = cached
        return cached

    extant_cache: Dict[int, int] = {}

    def _extant(pid: int) -> int:
        cached = extant_cache.get(pid)
        if cached is None:
            cached = universe.extant_mask(resolved.procs[pid])
            extant_cache[pid] = cached
        return cached

    worklist = list(seed_pids)
    queued = [False] * num_procs
    for pid in worklist:
        queued[pid] = True
    while worklist:
        caller_pid = worklist.pop()
        queued[caller_pid] = False
        for nested in resolved.procs[caller_pid].nested:
            new_pairs = pairs[caller_pid] - pairs[nested.pid]
            if new_pairs:
                for pair in new_pairs:
                    a, b = tuple(pair)
                    _add_pair(nested.pid, a, b)
                if not queued[nested.pid]:
                    queued[nested.pid] = True
                    worklist.append(nested.pid)
        caller_partners = dict(partner_mask[caller_pid])
        for callee_pid, ref in _sites_of(caller_pid):
            callee_extant = _extant(callee_pid)
            callee_partners = partner_mask[callee_pid]
            added = False
            for index, (formal_uid, actual_uid) in enumerate(ref):
                formal_partners = callee_partners.get(formal_uid, 0)
                if (
                    (callee_extant >> actual_uid) & 1
                    and actual_uid != formal_uid
                    and not (formal_partners >> actual_uid) & 1
                ):
                    _add_pair(callee_pid, formal_uid, actual_uid)
                    formal_partners |= 1 << actual_uid
                    added = True
                aliased_to_actual = caller_partners.get(actual_uid, 0)
                for formal_j_uid, actual_j_uid in ref[index + 1:]:
                    same = actual_uid == actual_j_uid
                    known = (aliased_to_actual >> actual_j_uid) & 1
                    if (same or known) and formal_uid != formal_j_uid:
                        if not (formal_partners >> formal_j_uid) & 1:
                            _add_pair(callee_pid, formal_uid, formal_j_uid)
                            formal_partners |= 1 << formal_j_uid
                            added = True
                new_bits = (
                    aliased_to_actual
                    & callee_extant
                    & ~formal_partners
                    & ~(1 << formal_uid)
                )
                while new_bits:
                    low = new_bits & -new_bits
                    other = low.bit_length() - 1
                    _add_pair(callee_pid, formal_uid, other)
                    formal_partners |= low
                    new_bits ^= low
                    added = True
            if added and not queued[callee_pid]:
                queued[callee_pid] = True
                worklist.append(callee_pid)

    return AliasResult(
        resolved=resolved,
        pairs=pairs,
        partner_mask=partner_mask,
        domain_mask=domain_mask,
    )


def factor_aliases_into(
    dmod_masks: Sequence[int],
    aliases: AliasResult,
    resolved: ResolvedProgram,
    counter: Optional[OpCounter] = None,
) -> List[int]:
    """Section 5 step (2): ``MOD(s)`` from ``DMOD(s)`` and the caller's
    alias pairs (one expansion step, as the paper specifies)."""
    if counter is None:
        counter = OpCounter()
    domains = aliases.domains()
    partner_mask = aliases.partner_mask
    result: List[int] = []
    for site in resolved.call_sites:
        mask = dmod_masks[site.site_id]
        caller_pid = site.caller.pid
        # One AND selects exactly the members of DMOD(s) that have an
        # alias partner; only those are expanded.  The counter charges
        # one bit-vector step per expanded member — the same tally as
        # walking the partner table and testing each key against the
        # mask, which is what this replaces.
        hits = mask & domains[caller_pid]
        expanded = mask
        if hits:
            partners = partner_mask[caller_pid]
            counter.bit_vector_steps += hits.bit_count()
            while hits:
                low = hits & -hits
                expanded |= partners[low.bit_length() - 1]
                hits ^= low
        result.append(expanded)
    return result


def factor_aliases_fused(
    dmod_rows: Sequence[Sequence[int]],
    aliases: AliasResult,
    arena,
    num_kinds: int,
    counters: Sequence[OpCounter],
) -> List[List[int]]:
    """Section 5 step (2) over the per-kind per-site DMOD rows.

    The caller decode and domain lookup run once per site and feed
    every lane; expansion happens lane by lane (the partner tables are
    per-uid), so each kind's counter is charged exactly the legacy
    tally: one bit-vector step per expanded member of that kind's set.
    """
    domains = aliases.domains()
    partner_mask = aliases.partner_mask
    site_caller = arena.site_caller
    num_sites = len(site_caller)
    result: List[List[int]] = [list(row) for row in dmod_rows]
    for sid in range(num_sites):
        caller_pid = site_caller[sid]
        domain = domains[caller_pid]
        if not domain:
            continue
        partners = partner_mask[caller_pid]
        for k in range(num_kinds):
            hits = dmod_rows[k][sid] & domain
            if hits:
                counters[k].bit_vector_steps += hits.bit_count()
                expanded = result[k][sid]
                while hits:
                    low = hits & -hits
                    expanded |= partners[low.bit_length() - 1]
                    hits ^= low
                result[k][sid] = expanded
    return result
