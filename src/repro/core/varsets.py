"""The variable universe: uid-indexed bit masks for the program's
variables, plus the structural masks (``GLOBAL``, ``LOCAL(p)``,
per-level) the equations intersect against.

Every analysis set in this package — ``IMOD``, ``GMOD``, ``DMOD``, … —
is an ``int`` whose bit ``i`` stands for the variable with
``uid == i``; :class:`VariableUniverse` is the one place that knows how
to translate between masks and :class:`~repro.lang.symbols.VarSymbol`
objects.
"""

from __future__ import annotations

import enum
from typing import Dict, FrozenSet, Iterable, List, Set

from repro.core.bitvec import iter_bits, mask_of
from repro.lang.symbols import ProcSymbol, ResolvedProgram, VarSymbol


class EffectKind(enum.Enum):
    """Which side-effect problem is being solved.

    The paper develops ``MOD`` in full and notes "the USE problem has
    an analogous solution"; every solver here is parameterised on this
    enum so both problems share one implementation.
    """

    MOD = "mod"
    USE = "use"


class VariableUniverse:
    """Masks and translations for one resolved program."""

    def __init__(self, resolved: ResolvedProgram):
        self.resolved = resolved
        self.size = len(resolved.variables)
        #: Mask of all level-0 variables (the paper's ``GLOBAL`` set).
        self.global_mask = mask_of(v.uid for v in resolved.variables if v.is_global)
        #: ``LOCAL(p)`` per pid: formals + locals (for main: the globals),
        #: i.e. every name deallocated when p returns.
        self.local_mask: List[int] = []
        #: Formal parameters of p, per pid.
        self.formal_mask: List[int] = []
        for proc in resolved.procs:
            self.local_mask.append(mask_of(v.uid for v in proc.local_set()))
            self.formal_mask.append(mask_of(v.uid for v in proc.formals))
        #: Variables declared at each nesting level (level 0 = globals).
        max_level = max((v.level for v in resolved.variables), default=0)
        self.level_mask: List[int] = [0] * (max_level + 1)
        for var in resolved.variables:
            self.level_mask[var.level] |= 1 << var.uid
        self._visible_cache: Dict[int, int] = {}

    @classmethod
    def spliced(
        cls,
        resolved: ResolvedProgram,
        global_mask: int,
        local_mask: Iterable[int],
        formal_mask: Iterable[int],
        level_mask: Iterable[int],
        dirty_pids: Iterable[int] = (),
    ) -> "VariableUniverse":
        """Rebuild a universe from a previous version's masks instead of
        re-walking every declaration.

        Valid only when the uid and pid spaces are pinned (identical
        variable and procedure name lists — the incremental engine's
        ``patchable`` precondition): every structural mask is then a
        function of the declaration *names*, except the formal/local
        split of an edited procedure, which is recomputed for the
        ``dirty_pids``.
        """
        self = object.__new__(cls)
        self.resolved = resolved
        self.size = len(resolved.variables)
        self.global_mask = global_mask
        self.local_mask = list(local_mask)
        self.formal_mask = list(formal_mask)
        for pid in dirty_pids:
            proc = resolved.procs[pid]
            self.local_mask[pid] = mask_of(v.uid for v in proc.local_set())
            self.formal_mask[pid] = mask_of(v.uid for v in proc.formals)
        self.level_mask = list(level_mask)
        self._visible_cache = {}
        return self

    # -- translations -------------------------------------------------------

    def to_symbols(self, mask: int) -> List[VarSymbol]:
        """Decode a mask to its symbols, uid-ascending."""
        return [self.resolved.variables[uid] for uid in iter_bits(mask)]

    def to_names(self, mask: int) -> List[str]:
        """Decode a mask to qualified names, uid-ascending."""
        return [symbol.qualified_name for symbol in self.to_symbols(mask)]

    def mask_of_symbols(self, symbols: Iterable[VarSymbol]) -> int:
        return mask_of(symbol.uid for symbol in symbols)

    def mask_of_names(self, names: Iterable[str]) -> int:
        """Build a mask from qualified names (test convenience)."""
        return mask_of(self.resolved.var_named(name).uid for name in names)

    # -- structural masks ------------------------------------------------------

    def visible_mask(self, proc: ProcSymbol) -> int:
        """Variables visible inside ``proc`` after lexical shadowing."""
        cached = self._visible_cache.get(proc.pid)
        if cached is None:
            visible = self.resolved.visible_variables(proc).values()
            cached = mask_of(symbol.uid for symbol in visible)
            self._visible_cache[proc.pid] = cached
        return cached

    def extant_mask(self, proc: ProcSymbol) -> int:
        """Variables whose instances are live while ``proc`` runs:
        globals plus the locals/formals of every procedure on its
        lexical chain.  A superset of :meth:`visible_mask` — an inner
        declaration shadows an outer *name*, but the outer instance
        stays extant (and modifiable through aliases)."""
        mask = self.global_mask
        for scope_proc in proc.lexical_chain():
            mask |= self.local_mask[scope_proc.pid]
        return mask

    def levels(self) -> int:
        """Number of distinct variable levels (``d_P`` can exceed this
        when deep procedures declare nothing)."""
        return len(self.level_mask)

    def format(self, mask: int) -> str:
        """Human-readable rendering, used by the CLI and examples."""
        return "{%s}" % ", ".join(self.to_names(mask))
