"""Bit-vector set helpers and operation accounting.

Variable sets are represented as Python integers used as bit vectors
(bit ``i`` set ⟺ the variable with ``uid == i`` is in the set).  This
is both the fastest set representation available in pure Python and a
faithful model of the paper's cost accounting, which is stated in
*bit-vector steps* (one logical operation over a whole vector) and, for
the binding multi-graph method, *single-bit steps*.

:class:`OpCounter` tallies those steps.  The algorithms increment it at
exactly the points the paper counts — e.g. each execution of
``findgmod``'s line 17 or line 22 is one bit-vector step — so the
benchmark suite can verify Theorem 2 style bounds exactly, not just by
wall-clock proxy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Sequence


def mask_of(uids: Iterable[int]) -> int:
    """Build a bit mask from an iterable of bit positions."""
    mask = 0
    for uid in uids:
        mask |= 1 << uid
    return mask


def iter_bits(mask: int) -> Iterator[int]:
    """Yield the positions of set bits, ascending."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


def popcount(mask: int) -> int:
    """Number of set bits.

    ``int.bit_count`` (Python 3.10+) counts bits directly on the
    underlying limbs — unlike the old ``bin(mask).count("1")`` it never
    materializes a binary string, which matters on dense 10k-variable
    masks (see the popcount micro-benchmark in
    ``benchmarks/test_bench_frontend.py``).
    """
    return mask.bit_count()


def contains(mask: int, uid: int) -> bool:
    return (mask >> uid) & 1 == 1


@dataclass
class OpCounter:
    """Operation tallies in the paper's cost model.

    ``bit_vector_steps``
        Whole-vector logical operations (union / intersection /
        difference of variable sets) — the unit of Theorems 2's bound
        and of the swift algorithm's ``O(E·α)`` bound.
    ``single_bit_steps``
        Constant-size boolean operations — the unit of the binding
        multi-graph method's ``O(Eβ)`` bound (Section 3.2).
    ``meet_operations``
        Lattice meets, the unit the regular-section analysis of
        Section 6 is measured in.
    """

    bit_vector_steps: int = 0
    single_bit_steps: int = 0
    meet_operations: int = 0

    def reset(self) -> None:
        self.bit_vector_steps = 0
        self.single_bit_steps = 0
        self.meet_operations = 0

    def merge(self, other: "OpCounter") -> None:
        """Add another counter's tallies into this one (the pipeline
        accumulates per-kind counters, then folds them into the
        program total — addition commutes, so the fold order never
        changes the totals)."""
        self.bit_vector_steps += other.bit_vector_steps
        self.single_bit_steps += other.single_bit_steps
        self.meet_operations += other.meet_operations
