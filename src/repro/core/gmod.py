"""``findgmod`` — Figure 2 of the paper, with Theorem 2 instrumentation.

Solves equation (4)::

    GMOD(p) = IMOD+(p)  ∪  ∪_{e=(p,q)} (GMOD(q) − LOCAL(q))

in a single depth-first pass over the call multi-graph, adapted from
Tarjan's strongly-connected-components algorithm.  The three additions
to Tarjan's algorithm (lines 8, 17, 22 in the paper's listing) are:

* **line 8** — initialise ``GMOD[p] := IMOD+[p]`` when ``p`` is first
  visited;
* **line 17** — on every edge *except* a back/cross edge into the
  still-open component, apply
  ``GMOD[p] ∪= GMOD[q] − LOCAL[q]``.  (This includes tree edges, after
  the recursive call returns — Lemma 2's proof depends on it.  In the
  paper's listing this is the fall-through from the tree-edge branch
  into the if/else on line 14.)
* **line 22** — when the root of a component is found, augment every
  member ``u`` with ``GMOD[root] − LOCAL[root]``.

The paper's listing prints the line-17/22 operand as
``GMOD[q] ∩ LOCAL[q]``; the prose ("everything that is *not* local to
q") and equation (8) show the intended operand is the complement, i.e.
set difference — which is what we implement.

Theorem 2: line 17 executes at most once per edge and line 22 at most
once per vertex, so the algorithm takes ``O(E_C + N_C)`` bit-vector
steps.  :class:`GmodResult.counter` records the exact tallies so the
benchmark suite can check the bound as an equality, not a trend.

The listing only searches from the main procedure (``search(1)``),
relying on Section 3.3's unreachable-procedure elimination.  We instead
restart the search from every still-unvisited procedure (in pid order)
after main's search finishes; each restart is an ordinary Tarjan root,
and every cross edge from a later root leads to an already-closed
component whose ``GMOD`` is final, so the result equals the least
solution of equation (4) on the *whole* graph.  Callers that want the
paper's exact behaviour can pass ``roots=[main.pid]`` and
``restart=False``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.core.bitvec import OpCounter
from repro.core.varsets import EffectKind, VariableUniverse
from repro.graphs.callgraph import CallMultiGraph


@dataclass
class GmodResult:
    """Solution of the global-variable problem plus instrumentation."""

    kind: EffectKind
    #: Per pid: GMOD (or GUSE) as a uid bit mask.
    gmod: List[int]
    #: Depth-first numbers assigned by the search (1-based).
    dfn: List[int]
    #: Component index per pid (Tarjan close order).
    component_of: List[int]
    counter: OpCounter = field(default_factory=OpCounter)
    #: Exact execution tallies for the Theorem 2 bound.
    line8_count: int = 0
    line17_count: int = 0
    line22_count: int = 0


def findgmod(
    graph: CallMultiGraph,
    imod_plus: Sequence[int],
    universe: VariableUniverse,
    kind: EffectKind = EffectKind.MOD,
    counter: Optional[OpCounter] = None,
    roots: Optional[Sequence[int]] = None,
    restart: bool = True,
) -> GmodResult:
    """Run Figure 2's algorithm over the call multi-graph."""
    if counter is None:
        counter = OpCounter()
    num_nodes = graph.num_nodes
    successors = graph.successors
    local_mask = universe.local_mask

    gmod = [0] * num_nodes
    dfn = [0] * num_nodes
    lowlink = [0] * num_nodes
    on_stack = [False] * num_nodes
    component_of = [-1] * num_nodes
    stack: List[int] = []
    next_dfn = 1
    num_components = 0
    line8 = line17 = line22 = 0

    if roots is None:
        roots = [graph.resolved.main.pid]
    search_roots = list(roots)
    if restart:
        search_roots += list(range(num_nodes))

    for root in search_roots:
        if dfn[root] != 0:
            continue
        # Visit ``root`` (lines 7-10).
        dfn[root] = lowlink[root] = next_dfn
        next_dfn += 1
        gmod[root] = imod_plus[root]
        line8 += 1
        counter.bit_vector_steps += 1
        stack.append(root)
        on_stack[root] = True
        frames: List[List[object]] = [[root, iter(successors[root])]]

        while frames:
            node, succ_iter = frames[-1]
            descended = False
            for succ in succ_iter:
                if dfn[succ] == 0:
                    # Tree edge (line 12): recurse.  The fall-through
                    # application of line 17 happens when the child
                    # frame finishes, below.
                    dfn[succ] = lowlink[succ] = next_dfn
                    next_dfn += 1
                    gmod[succ] = imod_plus[succ]
                    line8 += 1
                    counter.bit_vector_steps += 1
                    stack.append(succ)
                    on_stack[succ] = True
                    frames.append([succ, iter(successors[succ])])
                    descended = True
                    break
                if dfn[succ] < dfn[node] and on_stack[succ]:
                    # Back or cross edge into the open component
                    # (line 14): lowlink only.
                    if dfn[succ] < lowlink[node]:
                        lowlink[node] = dfn[succ]
                else:
                    # Line 17: apply equation (4).
                    gmod[node] |= gmod[succ] & ~local_mask[succ]
                    line17 += 1
                    counter.bit_vector_steps += 1
            if descended:
                continue

            frames.pop()
            # Component-root test (line 19).
            if lowlink[node] == dfn[node]:
                while True:
                    member = stack.pop()
                    on_stack[member] = False
                    component_of[member] = num_components
                    # Line 22: adjust each member from the root's set.
                    gmod[member] |= gmod[node] & ~local_mask[node]
                    line22 += 1
                    counter.bit_vector_steps += 1
                    if member == node:
                        break
                num_components += 1
            if frames:
                parent = frames[-1][0]
                if lowlink[node] < lowlink[parent]:
                    lowlink[parent] = lowlink[node]
                # Fall-through after the tree-edge recursion: the
                # line-14 condition ``dfn[q] < dfn[p] and q on stack``
                # is always false for a tree child, so line 17 applies.
                gmod[parent] |= gmod[node] & ~local_mask[node]
                line17 += 1
                counter.bit_vector_steps += 1

    return GmodResult(
        kind=kind,
        gmod=gmod,
        dfn=dfn,
        component_of=component_of,
        counter=counter,
        line8_count=line8,
        line17_count=line17,
        line22_count=line22,
    )


@dataclass
class FusedGmodResult:
    """One Figure 2 walk solving all kinds: one per-pid GMOD mask row
    per kind plus the shared structural tallies."""

    gmod: List[List[int]]
    dfn: List[int]
    component_of: List[int]
    line8_count: int = 0
    line17_count: int = 0
    line22_count: int = 0


def findgmod_fused(
    arena,
    imod_plus_rows: Sequence[Sequence[int]],
    num_kinds: int,
    counters: Sequence[OpCounter],
    roots: Optional[Sequence[int]] = None,
    restart: bool = True,
) -> FusedGmodResult:
    """Figure 2 over the arena's call CSR, all kinds in one walk.

    Each node carries one mask per kind, advanced side by side: the
    DFS bookkeeping — frames, lowlinks, the component stack, the edge
    classification — runs once instead of once per kind, while each
    lane's set operations stay exactly the legacy ones.  The
    ``−LOCAL(q)`` operand is the arena's precomputed *positive* strip
    mask (the per-edge ``~`` of the legacy path paid once per
    procedure instead).

    Counter identity: Theorem 2's tallies are structural — line 8 fires
    once per first visit, line 17 once per qualifying edge, line 22
    once per vertex — so they are identical for every kind; each kind's
    counter receives the same ``line8 + line17 + line22`` total the
    legacy walk accumulates.  The walk is a Tarjan-adapted DFS, so it
    registers one condensation-equivalent pass on the call graph.
    """
    csr = arena.call_csr
    heads = csr.heads
    succ = csr.succ
    num_nodes = csr.num_nodes
    strip = arena.strip_masks()

    rows: List[List[int]] = [[0] * num_nodes for _ in range(num_kinds)]
    dfn = [0] * num_nodes
    lowlink = [0] * num_nodes
    on_stack = [False] * num_nodes
    component_of = [-1] * num_nodes
    stack: List[int] = []
    next_dfn = 1
    num_components = 0
    line8 = line17 = line22 = 0

    if roots is None:
        roots = [arena.resolved.main.pid]
    search_roots = list(roots)
    if restart:
        search_roots += list(range(num_nodes))

    for root in search_roots:
        if dfn[root] != 0:
            continue
        dfn[root] = lowlink[root] = next_dfn
        next_dfn += 1
        for k in range(num_kinds):
            rows[k][root] = imod_plus_rows[k][root]
        line8 += 1
        stack.append(root)
        on_stack[root] = True
        frames: List[List[object]] = [[root, iter(succ[heads[root]:heads[root + 1]])]]

        while frames:
            node, succ_iter = frames[-1]
            descended = False
            for target in succ_iter:
                if dfn[target] == 0:
                    dfn[target] = lowlink[target] = next_dfn
                    next_dfn += 1
                    for k in range(num_kinds):
                        rows[k][target] = imod_plus_rows[k][target]
                    line8 += 1
                    stack.append(target)
                    on_stack[target] = True
                    frames.append(
                        [target, iter(succ[heads[target]:heads[target + 1]])]
                    )
                    descended = True
                    break
                if dfn[target] < dfn[node] and on_stack[target]:
                    if dfn[target] < lowlink[node]:
                        lowlink[node] = dfn[target]
                else:
                    mask = strip[target]
                    for row in rows:
                        row[node] |= row[target] & mask
                    line17 += 1
            if descended:
                continue

            frames.pop()
            if lowlink[node] == dfn[node]:
                mask = strip[node]
                outs = [row[node] & mask for row in rows]
                while True:
                    member = stack.pop()
                    on_stack[member] = False
                    component_of[member] = num_components
                    for k in range(num_kinds):
                        rows[k][member] |= outs[k]
                    line22 += 1
                    if member == node:
                        break
                num_components += 1
            if frames:
                parent = frames[-1][0]
                if lowlink[node] < lowlink[parent]:
                    lowlink[parent] = lowlink[node]
                mask = strip[node]
                for row in rows:
                    row[parent] |= row[node] & mask
                line17 += 1

    arena.note_condensation("call")
    total = line8 + line17 + line22
    for counter in counters:
        counter.bit_vector_steps += total

    return FusedGmodResult(
        gmod=rows,
        dfn=dfn,
        component_of=component_of,
        line8_count=line8,
        line17_count=line17,
        line22_count=line22,
    )
