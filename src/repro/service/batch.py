"""Batch analysis engine: fan the pipeline out over a corpus.

The driver analyzes every CK file under a directory, in parallel,
with three guarantees the single-file CLI cannot give:

* **isolation** — a malformed or crashing file yields a per-file
  error record; the rest of the corpus still completes;
* **idempotence** — with a cache directory, a file whose content hash
  already has a stored summary is never re-solved
  (:mod:`repro.service.cache`);
* **determinism** — results are reported in sorted path order and the
  per-file payloads are byte-identical whether produced sequentially,
  by a process pool, or read back from the cache (the differential
  suite asserts this).

Workers run :func:`repro.core.pipeline.analyze_source_payload`, a
module-level picklable entry point, via
:class:`concurrent.futures.ProcessPoolExecutor`.
"""

from __future__ import annotations

import os
import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass, field
from fnmatch import fnmatch
from typing import Dict, List, Optional, Sequence, Union

from repro.core.pipeline import GMOD_METHODS, analyze_source_payload
from repro.lang.errors import CkError
from repro.service.cache import CacheStats, SummaryCache, content_key

STATUS_OK = "ok"
STATUS_ERROR = "error"
STATUS_TIMEOUT = "timeout"


def _analyze_task(task) -> Dict:
    """Worker body: analyze one source, never raise.

    Every failure mode becomes a structured error record so one bad
    file cannot take down the pool or the run.  ``shards`` (None =
    monolithic) selects the sharded solver; workers always run it
    in-process (``shard_jobs=1``) — the batch pool is the only layer
    of process fan-out.
    """
    path, source, gmod_method, shards = task
    try:
        result = analyze_source_payload(
            source, gmod_method=gmod_method, shards=shards, shard_jobs=1
        )
        return {"status": STATUS_OK, "path": path, "result": result}
    except CkError as error:
        message = "%s: %s" % (type(error).__name__, error)
        return {"status": STATUS_ERROR, "path": path, "error": message}
    except Exception as error:  # Defensive: keep the pool alive.
        message = "".join(
            traceback.format_exception_only(type(error), error)
        ).strip()
        return {"status": STATUS_ERROR, "path": path, "error": message}


@dataclass
class FileResult:
    """Outcome of one corpus file."""

    path: str
    status: str  # STATUS_OK / STATUS_ERROR / STATUS_TIMEOUT
    cached: bool = False
    #: The :func:`analyze_source_payload` payload (None unless ok).
    result: Optional[Dict] = None
    error: str = ""
    key: str = ""  # Content-hash cache key ("" if the source was unreadable).
    elapsed: float = 0.0  # Wall seconds spent obtaining this result.

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK

    def to_dict(self, include_summary: bool = False) -> Dict:
        entry: Dict = {
            "path": self.path,
            "status": self.status,
            "cached": self.cached,
            "elapsed": self.elapsed,
        }
        if self.error:
            entry["error"] = self.error
        if self.key:
            entry["key"] = self.key
        if self.result is not None:
            entry["timings"] = self.result["timings"]
            entry["ops"] = self.result["ops"]
            entry["num_procs"] = self.result["num_procs"]
            entry["num_call_sites"] = self.result["num_call_sites"]
            if include_summary:
                entry["summary"] = self.result["summary"]
        return entry


@dataclass
class BatchReport:
    """Everything a batch run produced, in sorted path order."""

    root: str
    gmod_method: str
    jobs: int
    results: List[FileResult] = field(default_factory=list)
    wall_time: float = 0.0
    cache_dir: str = ""
    cache_stats: Optional[CacheStats] = None
    #: Shard count per file (None = monolithic solver).
    shards: Optional[int] = None

    def _count(self, status: str) -> int:
        return sum(1 for r in self.results if r.status == status)

    @property
    def ok_count(self) -> int:
        return self._count(STATUS_OK)

    @property
    def error_count(self) -> int:
        return self._count(STATUS_ERROR)

    @property
    def timeout_count(self) -> int:
        return self._count(STATUS_TIMEOUT)

    @property
    def cached_count(self) -> int:
        return sum(1 for r in self.results if r.cached)

    @property
    def analyzed_count(self) -> int:
        return sum(1 for r in self.results if r.ok and not r.cached)

    @property
    def exit_code(self) -> int:
        """0 when the whole corpus analyzed; 1 on any partial failure."""
        return 0 if self.error_count == 0 and self.timeout_count == 0 else 1

    def errors(self) -> List[FileResult]:
        return [r for r in self.results if not r.ok]

    def to_dict(self, include_summaries: bool = False) -> Dict:
        return {
            "root": self.root,
            "gmod_method": self.gmod_method,
            "jobs": self.jobs,
            "shards": self.shards,
            "wall_time": self.wall_time,
            "files": [r.to_dict(include_summaries) for r in self.results],
            "cache": self.cache_stats.to_dict() if self.cache_stats else None,
            "cache_dir": self.cache_dir,
        }


def discover_files(root: str, pattern: str = "*.ck") -> List[str]:
    """Corpus files under ``root`` matching ``pattern``, sorted.

    Dot-directories (including a cache directory placed inside the
    corpus) are skipped.  A ``root`` that is itself a file is a
    one-element corpus.
    """
    if os.path.isfile(root):
        return [root]
    found: List[str] = []
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = sorted(d for d in dirnames if not d.startswith("."))
        for name in sorted(filenames):
            if fnmatch(name, pattern):
                found.append(os.path.join(dirpath, name))
    return found


def run_batch(
    root: Union[str, Sequence[str]],
    jobs: Optional[int] = None,
    gmod_method: str = "auto",
    cache_dir: Optional[str] = None,
    timeout: Optional[float] = None,
    pattern: str = "*.ck",
    cache_max_entries: Optional[int] = None,
    shards: Optional[int] = None,
) -> BatchReport:
    """Analyze a corpus; the batch engine's programmatic entry point.

    ``root`` is a directory (scanned recursively for ``pattern``), a
    single file, or an explicit sequence of paths.  ``jobs`` caps the
    process-pool width (None/0 → ``os.cpu_count()``; 1 → run in-process
    with no pool).  ``cache_dir`` enables the content-hash summary
    cache.  ``timeout`` bounds the wait for each file's result once the
    driver turns to it (pool mode only); a file that exceeds it gets a
    ``timeout`` record and the run continues.  ``cache_max_entries``
    bounds the cache directory (LRU eviction; None = unbounded).
    ``shards`` switches every file to the sharded solver (workers stay
    single-process inside; the batch pool is the only fan-out).  The
    cache key is unchanged by ``shards``: summaries are bit-identical
    across solvers, so a hit may legitimately return a payload the
    other solver produced (``shard_info``/``timings`` reflect the
    producing run).
    """
    if gmod_method not in GMOD_METHODS:
        raise ValueError(
            "gmod_method must be one of %s, got %r" % (GMOD_METHODS, gmod_method)
        )
    started = time.perf_counter()
    if isinstance(root, str):
        paths = discover_files(root, pattern)
        report_root = root
    else:
        paths = list(root)
        report_root = os.path.commonprefix([os.path.dirname(p) for p in paths]) or "."

    cache = (
        SummaryCache(cache_dir, max_entries=cache_max_entries) if cache_dir else None
    )
    results: List[FileResult] = []
    by_path: Dict[str, FileResult] = {}
    work: List[FileResult] = []
    sources: Dict[str, str] = {}

    for path in paths:
        try:
            with open(path) as handle:
                source = handle.read()
        except OSError as error:
            record = FileResult(path=path, status=STATUS_ERROR, error=str(error))
            results.append(record)
            by_path[path] = record
            continue
        key = content_key(source, gmod_method)
        record = FileResult(path=path, status=STATUS_ERROR, key=key)
        results.append(record)
        by_path[path] = record
        if cache is not None:
            hit = cache.get(key)
            if hit is not None:
                record.status = STATUS_OK
                record.cached = True
                record.result = hit
                continue
        sources[path] = source
        work.append(record)

    if jobs is None or jobs <= 0:
        jobs = os.cpu_count() or 1
    effective_jobs = max(1, min(jobs, len(work))) if work else 1

    def _apply(record: FileResult, outcome: Dict, elapsed: float) -> None:
        record.status = outcome["status"]
        record.result = outcome.get("result")
        record.error = outcome.get("error", "")
        record.elapsed = elapsed
        if cache is not None and record.status == STATUS_OK:
            cache.put(record.key, record.result)

    if effective_jobs <= 1:
        for record in work:
            tick = time.perf_counter()
            outcome = _analyze_task(
                (record.path, sources[record.path], gmod_method, shards)
            )
            _apply(record, outcome, time.perf_counter() - tick)
    else:
        with ProcessPoolExecutor(max_workers=effective_jobs) as executor:
            submitted = [
                (
                    record,
                    time.perf_counter(),
                    executor.submit(
                        _analyze_task,
                        (record.path, sources[record.path], gmod_method, shards),
                    ),
                )
                for record in work
            ]
            for record, tick, future in submitted:
                try:
                    outcome = future.result(timeout=timeout)
                except FutureTimeoutError:
                    future.cancel()
                    record.status = STATUS_TIMEOUT
                    record.error = "analysis exceeded %.3gs" % timeout
                    record.elapsed = time.perf_counter() - tick
                    continue
                except Exception as error:  # e.g. BrokenProcessPool
                    record.status = STATUS_ERROR
                    record.error = "%s: %s" % (type(error).__name__, error)
                    record.elapsed = time.perf_counter() - tick
                    continue
                _apply(record, outcome, time.perf_counter() - tick)

    return BatchReport(
        root=report_root,
        gmod_method=gmod_method,
        jobs=effective_jobs,
        results=results,
        wall_time=time.perf_counter() - started,
        cache_dir=cache_dir or "",
        cache_stats=cache.stats if cache is not None else None,
        shards=shards,
    )
