"""Batch analysis engine: fan the pipeline out over a corpus.

The driver analyzes every CK file under a directory, in parallel,
with three guarantees the single-file CLI cannot give:

* **isolation** — a malformed or crashing file yields a per-file
  error record; the rest of the corpus still completes;
* **idempotence** — with a cache directory, a file whose content hash
  already has a stored summary is never re-solved
  (:mod:`repro.service.cache`);
* **determinism** — results are reported in sorted path order and the
  per-file payloads are byte-identical whether produced sequentially,
  by a process pool, or read back from the cache (the differential
  suite asserts this).

Workers run :func:`repro.core.pipeline.analyze_source_payload`, a
module-level picklable entry point, via
:class:`concurrent.futures.ProcessPoolExecutor`.

Fleet mode (``batch --fleet``) replaces the process pool with a
distributed fan-out: the driver hosts a
:class:`~repro.fleet.coordinator.FleetCoordinator`, remote workers
dial in, and each file is solved through the sharded pipeline with a
:class:`~repro.fleet.coordinator.FleetRunner` so the per-shard work
spreads across the fleet.  A
:class:`~repro.fleet.store.RemoteSummaryStore` adds a shared cache
tier consulted between the local disk cache and a fresh solve, and
populated on every fresh result — so one node's work warms the whole
fleet.  Payloads stay byte-identical across all of these paths.
"""

from __future__ import annotations

import os
import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass, field
from fnmatch import fnmatch
from typing import Dict, List, Optional, Sequence, Union

from repro.core.pipeline import GMOD_METHODS, analyze_source_payload
from repro.lang.errors import CkError
from repro.service.cache import CacheStats, SummaryCache, content_key

STATUS_OK = "ok"
STATUS_ERROR = "error"
STATUS_TIMEOUT = "timeout"


def _analyze_task(task) -> Dict:
    """Worker body: analyze one source, never raise.

    Every failure mode becomes a structured error record so one bad
    file cannot take down the pool or the run.  ``shards`` (None =
    monolithic) selects the sharded solver; workers always run it
    in-process (``shard_jobs=1``) — the batch pool is the only layer
    of process fan-out.
    """
    path, source, gmod_method, shards, lanes, partition = task
    try:
        result = analyze_source_payload(
            source, gmod_method=gmod_method, shards=shards, shard_jobs=1,
            shard_strategy=partition, lanes=lanes,
        )
        return {"status": STATUS_OK, "path": path, "result": result}
    except CkError as error:
        message = "%s: %s" % (type(error).__name__, error)
        return {"status": STATUS_ERROR, "path": path, "error": message}
    except Exception as error:  # Defensive: keep the pool alive.
        message = "".join(
            traceback.format_exception_only(type(error), error)
        ).strip()
        return {"status": STATUS_ERROR, "path": path, "error": message}


@dataclass
class FileResult:
    """Outcome of one corpus file."""

    path: str
    status: str  # STATUS_OK / STATUS_ERROR / STATUS_TIMEOUT
    cached: bool = False
    #: The :func:`analyze_source_payload` payload (None unless ok).
    result: Optional[Dict] = None
    error: str = ""
    key: str = ""  # Content-hash cache key ("" if the source was unreadable).
    elapsed: float = 0.0  # Wall seconds spent obtaining this result.
    #: True when the result came from the fleet summary store (a
    #: remote hit is also counted in ``cached``).
    remote: bool = False

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK

    def to_dict(self, include_summary: bool = False) -> Dict:
        entry: Dict = {
            "path": self.path,
            "status": self.status,
            "cached": self.cached,
            "elapsed": self.elapsed,
        }
        if self.error:
            entry["error"] = self.error
        if self.key:
            entry["key"] = self.key
        if self.remote:
            entry["remote"] = True
        if self.result is not None:
            entry["timings"] = self.result["timings"]
            entry["ops"] = self.result["ops"]
            entry["num_procs"] = self.result["num_procs"]
            entry["num_call_sites"] = self.result["num_call_sites"]
            if include_summary:
                entry["summary"] = self.result["summary"]
        return entry


@dataclass
class BatchReport:
    """Everything a batch run produced, in sorted path order."""

    root: str
    gmod_method: str
    jobs: int
    results: List[FileResult] = field(default_factory=list)
    wall_time: float = 0.0
    cache_dir: str = ""
    cache_stats: Optional[CacheStats] = None
    #: Shard count per file (None = monolithic solver).
    shards: Optional[int] = None
    #: Extra effect lanes requested for every file (lane names, request
    #: order); () for plain MOD+USE runs.
    lanes: tuple = ()
    #: Coordinator snapshot when the run used a fleet (None otherwise).
    fleet_stats: Optional[Dict] = None
    #: Remote summary store client stats (None when no store was used).
    store_stats: Optional[Dict] = None

    def _count(self, status: str) -> int:
        return sum(1 for r in self.results if r.status == status)

    @property
    def ok_count(self) -> int:
        return self._count(STATUS_OK)

    @property
    def error_count(self) -> int:
        return self._count(STATUS_ERROR)

    @property
    def timeout_count(self) -> int:
        return self._count(STATUS_TIMEOUT)

    @property
    def cached_count(self) -> int:
        return sum(1 for r in self.results if r.cached)

    @property
    def analyzed_count(self) -> int:
        return sum(1 for r in self.results if r.ok and not r.cached)

    @property
    def exit_code(self) -> int:
        """0 when the whole corpus analyzed; 1 on any partial failure."""
        return 0 if self.error_count == 0 and self.timeout_count == 0 else 1

    def errors(self) -> List[FileResult]:
        return [r for r in self.results if not r.ok]

    def to_dict(self, include_summaries: bool = False) -> Dict:
        return {
            "root": self.root,
            "gmod_method": self.gmod_method,
            "jobs": self.jobs,
            "shards": self.shards,
            "lanes": list(self.lanes),
            "wall_time": self.wall_time,
            "files": [r.to_dict(include_summaries) for r in self.results],
            "cache": self.cache_stats.to_dict() if self.cache_stats else None,
            "cache_dir": self.cache_dir,
            "fleet": self.fleet_stats,
            "remote_store": self.store_stats,
        }


def discover_files(root: str, pattern: str = "*.ck") -> List[str]:
    """Corpus files under ``root`` matching ``pattern``, sorted.

    Dot-directories (including a cache directory placed inside the
    corpus) are skipped.  A ``root`` that is itself a file is a
    one-element corpus.
    """
    if os.path.isfile(root):
        return [root]
    found: List[str] = []
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = sorted(d for d in dirnames if not d.startswith("."))
        for name in sorted(filenames):
            if fnmatch(name, pattern):
                found.append(os.path.join(dirpath, name))
    return found


def _analyze_fleet_task(
    path: str, source: str, shards: int, runner, lanes=(),
    partition: str = "greedy",
) -> Dict:
    """Fleet-mode body: solve one file through the sharded pipeline
    with the per-shard maps spread across the fleet.  Same outcome
    envelope and failure isolation as :func:`_analyze_task`.  Lanes
    ride the coordinator-side arena (the lane masks themselves reuse
    the shard wire codec, but the lane fixpoints are not fanned out)."""
    from repro.core.pipeline import payload_from_summary
    from repro.shard.solve import analyze_side_effects_sharded

    try:
        summary = analyze_side_effects_sharded(
            source, num_shards=shards, runner=runner, strategy=partition
        )
        if lanes:
            from repro.core.arena import get_arena
            from repro.lanes.driver import solve_lanes

            summary.lanes = solve_lanes(
                get_arena(summary.resolved), lanes, summary.timings
            )
        return {
            "status": STATUS_OK,
            "path": path,
            "result": payload_from_summary(summary),
        }
    except CkError as error:
        message = "%s: %s" % (type(error).__name__, error)
        return {"status": STATUS_ERROR, "path": path, "error": message}
    except Exception as error:
        message = "".join(
            traceback.format_exception_only(type(error), error)
        ).strip()
        return {"status": STATUS_ERROR, "path": path, "error": message}


def run_batch(
    root: Union[str, Sequence[str]],
    jobs: Optional[int] = None,
    gmod_method: str = "auto",
    cache_dir: Optional[str] = None,
    timeout: Optional[float] = None,
    pattern: str = "*.ck",
    cache_max_entries: Optional[int] = None,
    shards: Optional[int] = None,
    fleet=None,
    remote_store=None,
    lanes: Sequence[str] = (),
    partition: str = "greedy",
) -> BatchReport:
    """Analyze a corpus; the batch engine's programmatic entry point.

    ``root`` is a directory (scanned recursively for ``pattern``), a
    single file, or an explicit sequence of paths.  ``jobs`` caps the
    process-pool width (None/0 → ``os.cpu_count()``; 1 → run in-process
    with no pool).  ``cache_dir`` enables the content-hash summary
    cache.  ``timeout`` bounds the wait for each file's result once the
    driver turns to it (pool mode only); a file that exceeds it gets a
    ``timeout`` record and the run continues.  ``cache_max_entries``
    bounds the cache directory (LRU eviction; None = unbounded).
    ``shards`` switches every file to the sharded solver (workers stay
    single-process inside; the batch pool is the only fan-out).  The
    cache key is unchanged by ``shards``: summaries are bit-identical
    across solvers, so a hit may legitimately return a payload the
    other solver produced (``shard_info``/``timings`` reflect the
    producing run).

    ``fleet`` (a started :class:`~repro.fleet.FleetCoordinator`, not
    owned by this call) replaces the process pool: files are solved in
    the driver through the sharded pipeline with the per-shard maps
    fanned out to the fleet's workers — with zero workers connected the
    solve degrades to in-process, never fails.  ``remote_store`` (a
    :class:`~repro.fleet.RemoteSummaryStore`) is consulted after a
    local cache miss and populated on every fresh result; summaries
    are bit-identical regardless of which tier answered.

    ``lanes`` requests extra effect lanes (:mod:`repro.lanes`) for
    every file; lane blocks ride the per-file payloads and the cache
    key, so laned and lane-less runs never serve each other's entries.

    ``partition`` selects the shard partitioner strategy (with
    ``shards``/``fleet``): ``"greedy"``, ``"chunk"``, or
    ``"separator"``.  Like ``shards`` itself it does not enter the
    cache key — summaries are bit-identical across strategies.
    """
    if gmod_method not in GMOD_METHODS:
        raise ValueError(
            "gmod_method must be one of %s, got %r" % (GMOD_METHODS, gmod_method)
        )
    lanes = tuple(lanes)
    if lanes:
        from repro.lanes import validate_lane_names

        validate_lane_names(lanes)
    started = time.perf_counter()
    if isinstance(root, str):
        paths = discover_files(root, pattern)
        report_root = root
    else:
        paths = list(root)
        report_root = os.path.commonprefix([os.path.dirname(p) for p in paths]) or "."

    cache = (
        SummaryCache(cache_dir, max_entries=cache_max_entries) if cache_dir else None
    )
    results: List[FileResult] = []
    by_path: Dict[str, FileResult] = {}
    work: List[FileResult] = []
    sources: Dict[str, str] = {}

    for path in paths:
        try:
            with open(path) as handle:
                source = handle.read()
        except OSError as error:
            record = FileResult(path=path, status=STATUS_ERROR, error=str(error))
            results.append(record)
            by_path[path] = record
            continue
        key = content_key(source, gmod_method, lanes)
        record = FileResult(path=path, status=STATUS_ERROR, key=key)
        results.append(record)
        by_path[path] = record
        if cache is not None:
            hit = cache.get(key)
            if hit is not None:
                record.status = STATUS_OK
                record.cached = True
                record.result = hit
                continue
        if remote_store is not None:
            hit = remote_store.get(key)
            if hit is not None:
                record.status = STATUS_OK
                record.cached = True
                record.remote = True
                record.result = hit
                if cache is not None:
                    cache.put(key, hit)  # Warm the local tier too.
                continue
        sources[path] = source
        work.append(record)

    if jobs is None or jobs <= 0:
        jobs = os.cpu_count() or 1
    effective_jobs = max(1, min(jobs, len(work))) if work else 1

    def _apply(record: FileResult, outcome: Dict, elapsed: float) -> None:
        record.status = outcome["status"]
        record.result = outcome.get("result")
        record.error = outcome.get("error", "")
        record.elapsed = elapsed
        if record.status == STATUS_OK:
            if cache is not None:
                cache.put(record.key, record.result)
            if remote_store is not None:
                remote_store.put(record.key, record.result)

    if fleet is not None:
        from repro.fleet.coordinator import FleetRunner

        runner = FleetRunner(fleet)
        fleet_shards = shards or 4
        for record in work:
            tick = time.perf_counter()
            outcome = _analyze_fleet_task(
                record.path, sources[record.path], fleet_shards, runner,
                lanes, partition,
            )
            _apply(record, outcome, time.perf_counter() - tick)
    elif effective_jobs <= 1:
        for record in work:
            tick = time.perf_counter()
            outcome = _analyze_task(
                (record.path, sources[record.path], gmod_method, shards,
                 lanes, partition)
            )
            _apply(record, outcome, time.perf_counter() - tick)
    else:
        with ProcessPoolExecutor(max_workers=effective_jobs) as executor:
            submitted = [
                (
                    record,
                    time.perf_counter(),
                    executor.submit(
                        _analyze_task,
                        (record.path, sources[record.path], gmod_method,
                         shards, lanes, partition),
                    ),
                )
                for record in work
            ]
            for record, tick, future in submitted:
                try:
                    outcome = future.result(timeout=timeout)
                except FutureTimeoutError:
                    future.cancel()
                    record.status = STATUS_TIMEOUT
                    record.error = "analysis exceeded %.3gs" % timeout
                    record.elapsed = time.perf_counter() - tick
                    continue
                except Exception as error:  # e.g. BrokenProcessPool
                    record.status = STATUS_ERROR
                    record.error = "%s: %s" % (type(error).__name__, error)
                    record.elapsed = time.perf_counter() - tick
                    continue
                _apply(record, outcome, time.perf_counter() - tick)

    return BatchReport(
        root=report_root,
        gmod_method=gmod_method,
        jobs=effective_jobs,
        results=results,
        wall_time=time.perf_counter() - started,
        cache_dir=cache_dir or "",
        cache_stats=cache.stats if cache is not None else None,
        shards=shards,
        lanes=lanes,
        fleet_stats=fleet.stats() if fleet is not None else None,
        store_stats=(
            remote_store.stats.to_dict() if remote_store is not None else None
        ),
    )
