"""Content-addressed summary cache.

A cache entry is keyed by the SHA-256 of the *resolved source bytes*
plus everything that could change the answer: the persist format
version, the cache record schema, and the GMOD solver requested.  Two
consequences:

* an unchanged file is never re-solved — a warm batch run is pure
  cache reads;
* a schema bump (:data:`repro.core.persist.FORMAT_VERSION` or
  :data:`CACHE_SCHEMA_VERSION`) changes every key *and* is re-checked
  on read, so stale entries written by an older build are treated as
  misses, never misread.

Entries are one JSON file per key under the cache root; writes go
through a temp file + ``os.replace`` so concurrent batch runs sharing
a cache directory never observe torn entries.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.persist import FORMAT_VERSION

#: Version of the cache *record* envelope (not the summary payload —
#: that carries its own :data:`FORMAT_VERSION`).
CACHE_SCHEMA_VERSION = 1


def content_key(source: str, gmod_method: str = "auto") -> str:
    """SHA-256 cache key for one program source + solver choice."""
    hasher = hashlib.sha256()
    hasher.update(b"ck-summary-cache\0")
    hasher.update(("%d\0%d\0%s\0" % (CACHE_SCHEMA_VERSION, FORMAT_VERSION, gmod_method)).encode())
    hasher.update(source.encode("utf-8"))
    return hasher.hexdigest()


@dataclass
class CacheStats:
    """Hit/miss accounting for one cache instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    #: Entries found on disk but rejected (stale schema, torn JSON).
    invalid: int = 0

    def hit_rate(self) -> float:
        looked = self.hits + self.misses
        return self.hits / looked if looked else 0.0

    def to_dict(self) -> Dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "invalid": self.invalid,
            "hit_rate": self.hit_rate(),
        }


class SummaryCache:
    """On-disk cache of per-file analysis payloads."""

    def __init__(self, root: str):
        self.root = root
        self.stats = CacheStats()
        os.makedirs(root, exist_ok=True)

    def path_for(self, key: str) -> str:
        return os.path.join(self.root, key + ".json")

    def get(self, key: str) -> Optional[Dict]:
        """The cached analysis payload for ``key``, or None on miss."""
        path = self.path_for(key)
        try:
            with open(path) as handle:
                record = json.load(handle)
        except (OSError, ValueError):
            if os.path.exists(path):
                self.stats.invalid += 1
            self.stats.misses += 1
            return None
        if (
            record.get("cache_schema") != CACHE_SCHEMA_VERSION
            or record.get("format_version") != FORMAT_VERSION
            or "result" not in record
        ):
            self.stats.invalid += 1
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return record["result"]

    def put(self, key: str, result: Dict) -> None:
        """Store one analysis payload under ``key`` (atomic write)."""
        record = {
            "cache_schema": CACHE_SCHEMA_VERSION,
            "format_version": FORMAT_VERSION,
            "key": key,
            "result": result,
        }
        fd, tmp_path = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(record, handle, sort_keys=True)
            os.replace(tmp_path, self.path_for(key))
        except BaseException:
            if os.path.exists(tmp_path):
                os.unlink(tmp_path)
            raise
        self.stats.stores += 1
