"""Content-addressed summary cache.

A cache entry is keyed by the SHA-256 of the *resolved source bytes*
plus everything that could change the answer: the persist format
version, the cache record schema, and the GMOD solver requested.  Two
consequences:

* an unchanged file is never re-solved — a warm batch run is pure
  cache reads;
* a schema bump (:data:`repro.core.persist.FORMAT_VERSION` or
  :data:`CACHE_SCHEMA_VERSION`) changes every key *and* is re-checked
  on read, so stale entries written by an older build are treated as
  misses, never misread.

Entries are one binary file per key (``<key>.ckb``, the
:mod:`repro.core.persist` v3 container — roughly an order of magnitude
smaller than the JSON form it replaced) under the cache root; legacy
``<key>.json`` entries written by older builds are still read, so an
existing cache stays warm across the format change.  Writes go
through a temp file + ``os.replace`` so concurrent batch runs sharing
a cache directory never observe torn entries.

The cache is optionally *bounded*: with ``max_entries`` set, a store
that pushes the directory past the limit evicts the least-recently
used entries, where recency is the file mtime — refreshed on every
hit via ``os.utime`` — so a long-lived daemon or repeated batch runs
cannot grow the directory without limit.
"""

from __future__ import annotations

import hashlib
import mmap
import os
import tempfile
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.persist import (
    FORMAT_VERSION,
    encode_summary_payload,
    load_summary_payload_file,
    loads_summary_payload,
)

#: Version of the cache *record* envelope (not the summary payload —
#: that carries its own :data:`FORMAT_VERSION`).
CACHE_SCHEMA_VERSION = 1


def content_key(source: str, gmod_method: str = "auto", lanes=()) -> str:
    """SHA-256 cache key for one program source + solver choice.

    ``lanes`` (extra effect lanes solved alongside MOD+USE) feeds the
    key only when non-empty, so every pre-lane key — and every on-disk
    entry hashed from one — stays valid verbatim.
    """
    hasher = hashlib.sha256()
    hasher.update(b"ck-summary-cache\0")
    hasher.update(("%d\0%d\0%s\0" % (CACHE_SCHEMA_VERSION, FORMAT_VERSION, gmod_method)).encode())
    if lanes:
        hasher.update(("lanes=%s\0" % ",".join(lanes)).encode())
    hasher.update(source.encode("utf-8"))
    return hasher.hexdigest()


@dataclass
class CacheStats:
    """Hit/miss accounting for one cache instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    #: Entries found on disk but rejected (stale schema, torn JSON).
    invalid: int = 0
    #: Entries removed by the ``max_entries`` LRU bound.
    evictions: int = 0

    def hit_rate(self) -> float:
        looked = self.hits + self.misses
        return self.hits / looked if looked else 0.0

    def to_dict(self) -> Dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "invalid": self.invalid,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate(),
        }


def encode_record(key: str, result: Dict) -> bytes:
    """One cache record envelope as bytes — the unit both the disk
    cache and the fleet summary store exchange."""
    return encode_summary_payload(
        {
            "cache_schema": CACHE_SCHEMA_VERSION,
            "format_version": FORMAT_VERSION,
            "key": key,
            "result": result,
        }
    )


def validate_record_blob(key: str, blob: bytes) -> Optional[Dict]:
    """Decode a record envelope and return its result payload, or None
    when the blob is torn, stale-schema, or keyed for something else.

    Both ends of the fleet store run this: the server refuses to store
    junk, the client refuses to trust a server it didn't write to."""
    try:
        record = loads_summary_payload(blob)
    except ValueError:
        return None
    if (
        not isinstance(record, dict)
        or record.get("cache_schema") != CACHE_SCHEMA_VERSION
        or record.get("format_version") != FORMAT_VERSION
        or record.get("key") != key
        or "result" not in record
    ):
        return None
    return record["result"]


class SummaryCache:
    """On-disk cache of per-file analysis payloads.

    ``max_entries`` (None = unbounded, the historical behaviour) caps
    the number of entry files; exceeding it evicts in mtime order.
    """

    def __init__(self, root: str, max_entries: Optional[int] = None):
        self.root = root
        self.max_entries = max_entries
        self.stats = CacheStats()
        os.makedirs(root, exist_ok=True)

    def path_for(self, key: str) -> str:
        return os.path.join(self.root, key + ".ckb")

    def legacy_path_for(self, key: str) -> str:
        """Where an entry written by a pre-binary build would live."""
        return os.path.join(self.root, key + ".json")

    def _read_record(self, key: str) -> Optional[Dict]:
        """The raw record envelope for ``key`` from disk, plus a mtime
        refresh on the file that provided it.  Returns None when no
        readable entry exists (``stats.invalid`` is bumped for files
        that exist but do not decode)."""
        for path in (self.path_for(key), self.legacy_path_for(key)):
            try:
                # mmap-decode: the container walks the mapped pages in
                # place instead of pulling the file through a read
                # buffer — the warm-batch fast path is page-cache reads.
                record = load_summary_payload_file(path)
            except OSError:
                continue
            except ValueError:
                self.stats.invalid += 1
                continue
            if not isinstance(record, dict):
                self.stats.invalid += 1
                continue
            try:
                os.utime(path, None)  # Refresh recency for the LRU bound.
            except OSError:
                pass  # Entry raced away or read-only cache; the hit stands.
            return record
        return None

    def get(self, key: str) -> Optional[Dict]:
        """The cached analysis payload for ``key``, or None on miss."""
        record = self._read_record(key)
        if record is None:
            self.stats.misses += 1
            return None
        if (
            record.get("cache_schema") != CACHE_SCHEMA_VERSION
            or record.get("format_version") != FORMAT_VERSION
            or "result" not in record
        ):
            self.stats.invalid += 1
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return record["result"]

    def put(self, key: str, result: Dict) -> None:
        """Store one analysis payload under ``key`` (atomic write)."""
        self._write_blob(key, encode_record(key, result))

    def _write_blob(self, key: str, blob: bytes) -> None:
        fd, tmp_path = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(blob)
            os.replace(tmp_path, self.path_for(key))
        except BaseException:
            if os.path.exists(tmp_path):
                os.unlink(tmp_path)
            raise
        self.stats.stores += 1
        self._evict_over_limit()

    # -- raw record access (the fleet summary store service) -----------------

    def get_blob(self, key: str) -> Optional[bytes]:
        """The raw record envelope for ``key``, validated; None on
        miss.  Validation decodes in place over a memory map — a fleet
        store thrashing through static blobs re-reads hot pages, not
        whole files — and the bytes are materialized once, for the
        wire.  Legacy ``.json`` entries are served re-read through the
        normal path so the store never ships a format the client would
        reject."""
        blob = None
        validated = False
        try:
            with open(self.path_for(key), "rb") as handle:
                try:
                    buffer = mmap.mmap(
                        handle.fileno(), 0, access=mmap.ACCESS_READ
                    )
                except (ValueError, OSError):
                    blob = handle.read()
                    validated = validate_record_blob(key, blob) is not None
                else:
                    try:
                        if validate_record_blob(key, buffer) is not None:
                            blob = bytes(buffer)
                            validated = True
                    finally:
                        buffer.close()
        except OSError:
            pass
        if validated and blob is not None:
            self.stats.hits += 1
            try:
                os.utime(self.path_for(key), None)
            except OSError:
                pass
            return blob
        result = self.get(key)  # Legacy-path fallback + stats accounting.
        if result is None:
            return None
        return encode_record(key, result)

    def put_blob(self, key: str, blob: bytes) -> bool:
        """Store a raw record envelope; False (and no write) when the
        blob does not validate for ``key``."""
        if validate_record_blob(key, blob) is None:
            self.stats.invalid += 1
            return False
        self._write_blob(key, blob)
        return True

    def has(self, key: str) -> bool:
        return os.path.exists(self.path_for(key)) or os.path.exists(
            self.legacy_path_for(key)
        )

    def _evict_over_limit(self) -> None:
        """Drop least-recently-used entries past ``max_entries``.

        Recency is file mtime (refreshed on hit); races with concurrent
        runs sharing the directory are benign — a vanished file is
        simply skipped, and over-eviction only costs a future miss.
        """
        if self.max_entries is None:
            return
        try:
            names = [
                n for n in os.listdir(self.root) if n.endswith((".ckb", ".json"))
            ]
        except OSError:
            return
        if len(names) <= self.max_entries:
            return
        aged = []
        for name in names:
            try:
                aged.append((os.path.getmtime(os.path.join(self.root, name)), name))
            except OSError:
                continue
        aged.sort()
        for _, name in aged[: max(0, len(aged) - self.max_entries)]:
            try:
                os.unlink(os.path.join(self.root, name))
                self.stats.evictions += 1
            except OSError:
                continue
