"""Corpus-level statistics aggregation.

Rolls the per-file payloads of a :class:`~repro.service.batch.BatchReport`
up into one JSON document: per-phase wall-time totals, the paper's
bit-vector/single-bit step tallies summed across the corpus, cache
accounting, and throughput.  The schema is version-stamped so
downstream dashboards can detect drift the same way the summary cache
does.

Stats JSON schema (``STATS_SCHEMA_VERSION`` 1)::

    {
      "schema": 1,
      "corpus": {"root", "files", "ok", "errors", "timeouts",
                 "cached", "analyzed", "procs", "call_sites"},
      "phases": {phase: seconds, ...},        # summed over analyzed files
      "ops": {"bit_vector_steps", "single_bit_steps", "meet_operations"},
      "cache": {"hits", "misses", "stores", "invalid", "hit_rate"} | null,
      "throughput": {"wall_time", "files_per_second", "jobs",
                     "analysis_seconds"},
      "files": [per-file records without full summaries]
    }
"""

from __future__ import annotations

import json
from typing import Dict

from repro.service.batch import BatchReport

STATS_SCHEMA_VERSION = 1

OP_KEYS = ("bit_vector_steps", "single_bit_steps", "meet_operations")


def aggregate_stats(report: BatchReport) -> Dict:
    """The corpus-wide statistics document for one batch run."""
    phases: Dict[str, float] = {}
    ops = {key: 0 for key in OP_KEYS}
    procs = 0
    call_sites = 0
    analysis_seconds = 0.0
    for record in report.results:
        if record.result is None:
            continue
        procs += record.result["num_procs"]
        call_sites += record.result["num_call_sites"]
        if record.cached:
            # A cache hit did no solver work this run; its stored
            # timings/ops describe the original solve, not this one.
            continue
        for phase, seconds in record.result["timings"].items():
            phases[phase] = phases.get(phase, 0.0) + seconds
        for key in OP_KEYS:
            ops[key] += record.result["ops"][key]
        analysis_seconds += record.result["timings"].get("total", 0.0)
    total_files = len(report.results)
    return {
        "schema": STATS_SCHEMA_VERSION,
        "corpus": {
            "root": report.root,
            "files": total_files,
            "ok": report.ok_count,
            "errors": report.error_count,
            "timeouts": report.timeout_count,
            "cached": report.cached_count,
            "analyzed": report.analyzed_count,
            "procs": procs,
            "call_sites": call_sites,
        },
        "phases": phases,
        "ops": ops,
        "cache": report.cache_stats.to_dict() if report.cache_stats else None,
        "fleet": report.fleet_stats,
        "remote_store": report.store_stats,
        "throughput": {
            "wall_time": report.wall_time,
            "files_per_second": (
                total_files / report.wall_time if report.wall_time > 0 else 0.0
            ),
            "jobs": report.jobs,
            "analysis_seconds": analysis_seconds,
        },
        "files": [record.to_dict() for record in report.results],
    }


def write_stats_json(report: BatchReport, path: str, indent: int = 2) -> None:
    with open(path, "w") as handle:
        json.dump(aggregate_stats(report), handle, indent=indent, sort_keys=True)
        handle.write("\n")


def render_stats(report: BatchReport) -> str:
    """A terse human-readable roll-up for the CLI."""
    stats = aggregate_stats(report)
    corpus = stats["corpus"]
    lines = [
        "%d files: %d ok (%d cached, %d analyzed), %d errors, %d timeouts"
        % (
            corpus["files"],
            corpus["ok"],
            corpus["cached"],
            corpus["analyzed"],
            corpus["errors"],
            corpus["timeouts"],
        ),
        "%d procs, %d call sites, %d bit-vector steps"
        % (corpus["procs"], corpus["call_sites"], stats["ops"]["bit_vector_steps"]),
        "wall %.3fs (%.1f files/s, %d jobs)"
        % (
            stats["throughput"]["wall_time"],
            stats["throughput"]["files_per_second"],
            stats["throughput"]["jobs"],
        ),
    ]
    if stats["cache"] is not None:
        lines.append(
            "cache: %d hits / %d misses (%.0f%% hit rate)"
            % (
                stats["cache"]["hits"],
                stats["cache"]["misses"],
                100.0 * stats["cache"]["hit_rate"],
            )
        )
    if stats["remote_store"] is not None:
        store = stats["remote_store"]
        lines.append(
            "store: %d hits / %d misses, %d stored, %d errors"
            % (store["hits"], store["misses"], store["stores"], store["errors"])
        )
    if stats["fleet"] is not None:
        fleet = stats["fleet"]
        counters = fleet["counters"]
        lines.append(
            "fleet: %d workers, %d tasks (%d steals, %d reassigned,"
            " %d retries, %d local)"
            % (
                fleet["live_workers"],
                counters["tasks_completed"],
                counters["steals"],
                counters["reassigned"],
                counters["retries"],
                counters["local_tasks"],
            )
        )
    return "\n".join(lines)
