"""Corpus-level statistics aggregation.

Rolls the per-file payloads of a :class:`~repro.service.batch.BatchReport`
up into one JSON document: per-phase wall-time totals, the paper's
bit-vector/single-bit step tallies summed across the corpus, cache
accounting, and throughput.  The schema is version-stamped so
downstream dashboards can detect drift the same way the summary cache
does.

This docstring is the one authoritative catalogue of every top-level
stats-JSON key (mirrored as a table in the README; the schema-check
test pins the two against :data:`STATS_KEYS`).

Stats JSON schema (``STATS_SCHEMA_VERSION`` 1)::

    {
      "schema": 1,            # STATS_SCHEMA_VERSION of the writer
      "corpus": {"root", "files", "ok", "errors", "timeouts",
                 "cached", "analyzed", "procs", "call_sites"},
      "phases": {phase: seconds, ...},        # summed over analyzed files
      "ops": {"bit_vector_steps", "single_bit_steps", "meet_operations"},
      "cache": {"hits", "misses", "stores", "invalid", "evictions",
                "hit_rate"} | null,           # null: run had no cache dir
      "fleet": {...} | null,                  # coordinator snapshot
      "remote_store": {...} | null,           # store client tallies
      "lanes": {"requested": [name, ...],     # [] for lane-less runs
                "per_lane": {name: {"files",  # files carrying the lane
                                    "seconds"}}},  # summed lane.<name> time
      "throughput": {"wall_time", "files_per_second", "jobs",
                     "analysis_seconds"},
      "files": [per-file records without full summaries]
    }

Key-by-key:

* ``schema`` — :data:`STATS_SCHEMA_VERSION` this document conforms to.
* ``corpus`` — file/outcome counts plus summed program sizes.
* ``phases`` — per-phase wall seconds, summed over *analyzed* (non-
  cached) files; includes ``lane.<name>`` entries when lanes ran.
* ``ops`` — the paper's operation tallies, summed likewise.
* ``cache`` — local summary-cache accounting, or null without a cache.
* ``fleet`` — fleet coordinator snapshot, or null off-fleet.
* ``remote_store`` — remote summary-store client stats, or null.
* ``lanes`` — which extra effect lanes the run requested and what they
  cost: per lane, the number of payloads carrying its block and the
  summed ``lane.<name>`` solver seconds.
* ``throughput`` — wall time, files/second, pool width, summed
  per-file analysis seconds.
* ``files`` — per-file outcome records (no full summaries).
"""

from __future__ import annotations

import json
from typing import Dict

from repro.service.batch import BatchReport

STATS_SCHEMA_VERSION = 1

OP_KEYS = ("bit_vector_steps", "single_bit_steps", "meet_operations")

#: Every top-level key of the stats document, exactly — the module
#: docstring documents each; the schema-check test asserts the
#: aggregate emits these and nothing else.
STATS_KEYS = (
    "schema",
    "corpus",
    "phases",
    "ops",
    "cache",
    "fleet",
    "remote_store",
    "lanes",
    "throughput",
    "files",
)


def aggregate_stats(report: BatchReport) -> Dict:
    """The corpus-wide statistics document for one batch run."""
    phases: Dict[str, float] = {}
    ops = {key: 0 for key in OP_KEYS}
    procs = 0
    call_sites = 0
    analysis_seconds = 0.0
    per_lane: Dict[str, Dict] = {
        name: {"files": 0, "seconds": 0.0} for name in report.lanes
    }
    for record in report.results:
        if record.result is None:
            continue
        procs += record.result["num_procs"]
        call_sites += record.result["num_call_sites"]
        for name in record.result.get("lanes") or ():
            per_lane.setdefault(name, {"files": 0, "seconds": 0.0})
            per_lane[name]["files"] += 1
        if record.cached:
            # A cache hit did no solver work this run; its stored
            # timings/ops describe the original solve, not this one.
            continue
        for phase, seconds in record.result["timings"].items():
            phases[phase] = phases.get(phase, 0.0) + seconds
            if phase.startswith("lane."):
                lane_name = phase[len("lane."):]
                per_lane.setdefault(lane_name, {"files": 0, "seconds": 0.0})
                per_lane[lane_name]["seconds"] += seconds
        for key in OP_KEYS:
            ops[key] += record.result["ops"][key]
        analysis_seconds += record.result["timings"].get("total", 0.0)
    total_files = len(report.results)
    return {
        "schema": STATS_SCHEMA_VERSION,
        "corpus": {
            "root": report.root,
            "files": total_files,
            "ok": report.ok_count,
            "errors": report.error_count,
            "timeouts": report.timeout_count,
            "cached": report.cached_count,
            "analyzed": report.analyzed_count,
            "procs": procs,
            "call_sites": call_sites,
        },
        "phases": phases,
        "ops": ops,
        "cache": report.cache_stats.to_dict() if report.cache_stats else None,
        "fleet": report.fleet_stats,
        "remote_store": report.store_stats,
        "lanes": {
            "requested": list(report.lanes),
            "per_lane": per_lane,
        },
        "throughput": {
            "wall_time": report.wall_time,
            "files_per_second": (
                total_files / report.wall_time if report.wall_time > 0 else 0.0
            ),
            "jobs": report.jobs,
            "analysis_seconds": analysis_seconds,
        },
        "files": [record.to_dict() for record in report.results],
    }


def write_stats_json(report: BatchReport, path: str, indent: int = 2) -> None:
    with open(path, "w") as handle:
        json.dump(aggregate_stats(report), handle, indent=indent, sort_keys=True)
        handle.write("\n")


def render_stats(report: BatchReport) -> str:
    """A terse human-readable roll-up for the CLI."""
    stats = aggregate_stats(report)
    corpus = stats["corpus"]
    lines = [
        "%d files: %d ok (%d cached, %d analyzed), %d errors, %d timeouts"
        % (
            corpus["files"],
            corpus["ok"],
            corpus["cached"],
            corpus["analyzed"],
            corpus["errors"],
            corpus["timeouts"],
        ),
        "%d procs, %d call sites, %d bit-vector steps"
        % (corpus["procs"], corpus["call_sites"], stats["ops"]["bit_vector_steps"]),
        "wall %.3fs (%.1f files/s, %d jobs)"
        % (
            stats["throughput"]["wall_time"],
            stats["throughput"]["files_per_second"],
            stats["throughput"]["jobs"],
        ),
    ]
    if stats["lanes"]["requested"]:
        lines.append(
            "lanes: "
            + ", ".join(
                "%s (%d files, %.3fs)"
                % (name, entry["files"], entry["seconds"])
                for name, entry in sorted(stats["lanes"]["per_lane"].items())
            )
        )
    if stats["cache"] is not None:
        lines.append(
            "cache: %d hits / %d misses (%.0f%% hit rate)"
            % (
                stats["cache"]["hits"],
                stats["cache"]["misses"],
                100.0 * stats["cache"]["hit_rate"],
            )
        )
    if stats["remote_store"] is not None:
        store = stats["remote_store"]
        lines.append(
            "store: %d hits / %d misses, %d stored, %d errors"
            % (store["hits"], store["misses"], store["stores"], store["errors"])
        )
    if stats["fleet"] is not None:
        fleet = stats["fleet"]
        counters = fleet["counters"]
        lines.append(
            "fleet: %d workers, %d tasks (%d steals, %d reassigned,"
            " %d retries, %d local)"
            % (
                fleet["live_workers"],
                counters["tasks_completed"],
                counters["steals"],
                counters["reassigned"],
                counters["retries"],
                counters["local_tasks"],
            )
        )
    return "\n".join(lines)
