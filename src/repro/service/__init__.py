"""Corpus-scale analysis service.

The paper's economic argument is that MOD/USE summaries are cheap
enough to recompute wholesale — ``O(N_C + E_C)`` bit-vector steps per
program unit.  This package turns the single-file pipeline into a
batch engine that holds that promise at corpus scale:

* :mod:`repro.service.batch` — fan analysis out over a process pool
  with per-file error isolation and timeouts;
* :mod:`repro.service.cache` — a content-hash summary cache (layered
  on :mod:`repro.core.persist`) so unchanged files are never re-solved;
* :mod:`repro.service.stats` — per-phase wall times and bit-vector
  step tallies aggregated across the corpus into one JSON report.
"""

from repro.service.batch import BatchReport, FileResult, discover_files, run_batch
from repro.service.cache import CacheStats, SummaryCache, content_key
from repro.service.stats import aggregate_stats, render_stats, write_stats_json

__all__ = [
    "BatchReport",
    "FileResult",
    "discover_files",
    "run_batch",
    "CacheStats",
    "SummaryCache",
    "content_key",
    "aggregate_stats",
    "render_stats",
    "write_stats_json",
]
