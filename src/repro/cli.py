"""Command-line driver: ``ck-analyze`` (or ``python -m repro.cli``).

Subcommands:

* ``analyze FILE``   — run the full pipeline and print the per-procedure
  and per-call-site summary (add ``--sections`` for Figure 3 style
  regular sections, ``--dot-callgraph`` / ``--dot-binding`` for
  Graphviz output);
* ``run FILE``       — execute the program under the tracing
  interpreter and print its output plus observed per-site effects;
* ``gen``            — emit a random program (see
  :mod:`repro.workloads.generator`);
* ``constants FILE`` — interprocedural constant propagation report;
* ``summary FILE``   — write the analysis summary as JSON (for build
  systems / the recompilation analysis);
* ``recompile OLD.json NEW.json --edited a,b`` — which procedures need
  recompilation after an edit;
* ``profile [FILE]`` — run one full analysis under ``cProfile`` and
  print the per-phase timing breakdown (lex / parse / resolve /
  graphs / solvers) plus the hottest functions; with no file, a
  generated workload is profiled (``--gen-procs``);
* ``batch DIR``      — analyze every ``.ck`` file under a directory in
  parallel, with a content-hash summary cache and a corpus stats
  report (see :mod:`repro.service`); ``--shards N`` switches every
  file to the sharded solver;
* ``shard FILE``     — run the sharded whole-program solve
  (partition → boundary summaries → hierarchical stitch, see
  :mod:`repro.shard`) and print the summary plus partition stats;
* ``serve``          — run the long-lived analysis daemon: TCP,
  line-delimited JSON, incremental sessions (see :mod:`repro.server`);
  ``--fleet-port`` additionally hosts a fleet coordinator so sharded
  analyze requests fan out to connected workers;
* ``query``          — one request against a running daemon, response
  printed as JSON (scripting surface of :mod:`repro.server.client`);
* ``worker``         — join an analysis fleet: dial a coordinator
  (``batch --fleet`` or ``serve --fleet-port``) and execute shard
  tasks until told to stop (see :mod:`repro.fleet`);
* ``store``          — run the content-addressed summary store: a
  shared cache tier fleet front-ends consult before analyzing.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core.pipeline import GMOD_METHODS, analyze_side_effects
from repro.core.varsets import EffectKind
from repro.lang.errors import CkError
from repro.lang.interp import Interpreter
from repro.lang.pretty import pretty
from repro.lang.semantic import compile_source


def _cmd_analyze(args: argparse.Namespace) -> int:
    with open(args.file) as handle:
        source = handle.read()
    lanes = ()
    if args.lanes:
        from repro.lanes import parse_lane_names

        lanes = tuple(parse_lane_names(args.lanes))
    resolved = compile_source(source)
    summary = analyze_side_effects(
        resolved, gmod_method=args.gmod_method, lanes=lanes,
        backend=args.backend,
    )
    if args.dot_callgraph:
        print(summary.call_graph.to_dot())
        return 0
    if args.dot_binding:
        print(summary.binding_graph.to_dot())
        return 0
    print(summary.report())
    if args.backend != "auto":
        print("\nbackend plan: %s" % summary.backend)
    if lanes:
        from repro.lanes.driver import lane_payloads

        print("\neffect lanes (one shared condensation):")
        for name, block in lane_payloads(summary.lanes).items():
            spent = summary.timings.get("lane.%s" % name, 0.0)
            if name == "sections":
                filled = sum(
                    1 for rendered in block["sites"] if rendered
                )
                print(
                    "  %-10s %s lattice, %d/%d sites with sections (%.3fs)"
                    % (name, block["lattice"], filled,
                       len(block["sites"]), spent)
                )
            elif name == "refalias":
                print(
                    "  %-10s %d alias pairs over %d procedures (%.3fs)"
                    % (name, block["total_pairs"],
                       block["domain_procs"], spent)
                )
            else:
                print("  %-10s solved (%.3fs)" % (name, spent))
    if args.sections:
        from repro.core.arena import get_arena
        from repro.sections import analyze_sections

        print("\nregular sections (MOD, %s lattice):" % args.lattice)
        section_analysis = analyze_sections(
            resolved, EffectKind.MOD, summary.universe, summary.call_graph,
            lattice=args.lattice,
            condensation=get_arena(resolved).call_condensation(),
        )
        for site in resolved.call_sites:
            rendered = section_analysis.describe_site(site)
            print(
                "  site %d -> %s: %s"
                % (site.site_id, site.callee.qualified_name, ", ".join(rendered) or "(none)")
            )
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    with open(args.file) as handle:
        source = handle.read()
    resolved = compile_source(source)
    inputs = [int(token) for token in args.inputs.split(",")] if args.inputs else []
    interpreter = Interpreter(
        resolved, inputs=inputs, max_steps=args.max_steps, max_depth=args.max_depth
    )
    trace = interpreter.run()
    print("status: %s (%d steps)" % (trace.reason, trace.steps))
    if trace.output:
        print("output: %s" % " ".join(str(v) for v in trace.output))
    if args.trace:
        for site in resolved.call_sites:
            observed = trace.observed_mod.get(site.site_id)
            if observed is None:
                continue
            names = sorted(v.qualified_name for v in observed)
            print("site %d observed MOD: {%s}" % (site.site_id, ", ".join(names)))
    return 0


def _cmd_gen(args: argparse.Namespace) -> int:
    from repro.workloads.generator import GeneratorConfig, generate_program

    config = GeneratorConfig(
        seed=args.seed,
        num_procs=args.procs,
        num_globals=args.globals_,
        max_depth=args.depth,
        allow_recursion=not args.acyclic,
    )
    source = pretty(generate_program(config))
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(source)
    else:
        sys.stdout.write(source)
    return 0


def _cmd_constants(args: argparse.Namespace) -> int:
    from repro.extensions.constprop import solve_constants

    with open(args.file) as handle:
        resolved = compile_source(handle.read())
    result = solve_constants(resolved, kill_policy=args.kill_policy)
    report = result.report()
    print(report or "(no constant formals found)")
    print(
        "%d constant formals (%d substitutable) under the %s kill policy"
        % (result.constants_found(), result.substitutable_found(), args.kill_policy)
    )
    return 0


def _cmd_purity(args: argparse.Namespace) -> int:
    from repro.extensions.purity import purity_report

    with open(args.file) as handle:
        resolved = compile_source(handle.read())
    print(purity_report(analyze_side_effects(resolved)))
    return 0


def _cmd_summary(args: argparse.Namespace) -> int:
    from repro.core.persist import summary_to_json

    with open(args.file) as handle:
        resolved = compile_source(handle.read())
    text = summary_to_json(analyze_side_effects(resolved), indent=2)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text + "\n")
    else:
        print(text)
    return 0


def _cmd_recompile(args: argparse.Namespace) -> int:
    import json

    from repro.extensions.recompilation import recompilation_report

    with open(args.old) as handle:
        old_payload = json.load(handle)
    with open(args.new) as handle:
        new_payload = json.load(handle)
    edited = [name for name in args.edited.split(",") if name]
    print(recompilation_report(old_payload, new_payload, edited=edited))
    return 0


def _cmd_shard(args: argparse.Namespace) -> int:
    import json

    from repro.shard.solve import analyze_side_effects_sharded

    with open(args.file) as handle:
        source = handle.read()
    summary = analyze_side_effects_sharded(
        source,
        num_shards=args.shards,
        jobs=args.jobs,
        strategy=args.strategy,
    )
    info = summary.shard_info or {}
    if args.stats_json:
        print(json.dumps(info, indent=2, sort_keys=True))
        return 0
    print(summary.report())
    print(
        "\nshard plan (strategy=%s, requested=%d, jobs=%d):"
        % (info.get("strategy", args.strategy),
           info.get("requested_shards", args.shards),
           info.get("jobs", args.jobs))
    )
    for label, key in (("binding graph (RMOD)", "beta"), ("call graph (GMOD)", "call")):
        plan = info.get(key)
        if not plan:
            continue
        print(
            "  %-20s %d shard(s), sizes %s, %d/%d edges cut,"
            " %d components (largest %d)"
            % (label, plan["num_shards"], plan["shard_sizes"],
               plan["cut_edges"], plan["num_edges"],
               plan["num_components"], plan["largest_component"])
        )
        sep = plan.get("separator")
        if sep:
            print(
                "  %-20s tree %d nodes (depth %d), %d wave(s)"
                " (width %d), boundary %d%s"
                % ("  separator", sep["tree_nodes"], sep["tree_depth"],
                   sep["num_waves"], sep["max_wave_width"],
                   sep["boundary_total"],
                   " [greedy fallback]" if sep["fallback"] else "")
            )
    for key in ("rmod", "gmod"):
        stats = info.get(key)
        if not stats:
            continue
        print(
            "  %-20s boundary=%d engines: %d maskless / %d masked;"
            " summarize %.4fs stitch %.4fs backsub %.4fs"
            % (key.upper(), stats["boundary_nodes"],
               stats["maskless_shards"], stats["masked_shards"],
               stats["summarize_time"], stats["stitch_time"],
               stats["backsub_time"])
        )
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    import cProfile
    import io
    import pstats

    if args.file:
        with open(args.file) as handle:
            source = handle.read()
    else:
        from repro.workloads.generator import (
            generate_program,
            large_scale_config,
        )

        config = large_scale_config(
            args.gen_procs, seed=args.seed, num_globals=args.gen_globals
        )
        source = pretty(generate_program(config))
        print(
            "profiling generated workload: %d procedures, %d globals, seed %d"
            % (args.gen_procs, args.gen_globals, args.seed)
        )

    backends = ["bigint", "numpy"] if args.backend == "both" else [args.backend]
    if args.shards and args.backend != "auto":
        print(
            "note: --backend is ignored with --shards (the sharded solver"
            " is big-int only)",
            file=sys.stderr,
        )
        backends = ["auto"]

    per_backend = {}
    profiler = cProfile.Profile()
    profiler.enable()
    for backend in backends:
        for _ in range(args.repeat):
            if args.shards:
                from repro.shard.solve import analyze_side_effects_sharded

                summary = analyze_side_effects_sharded(
                    source, num_shards=args.shards, jobs=args.jobs
                )
            else:
                summary = analyze_side_effects(
                    source, gmod_method=args.gmod_method, backend=backend
                )
        per_backend[backend] = (summary.backend, summary.timings or {})
    profiler.disable()

    def _phase_rows(timings):
        split_front_end = {"lex", "parse", "resolve"} <= timings.keys()
        for phase, seconds in timings.items():
            if phase == "total":
                continue
            if phase == "compile" and split_front_end:
                continue  # Sum of lex+parse+resolve; shown via its parts.
            yield phase, seconds

    if len(backends) == 1:
        plan, timings = per_backend[backends[0]]
        total = timings.get("total", 0.0)
        print("\nper-phase breakdown (last run, backend plan %s):" % plan)
        for phase, seconds in _phase_rows(timings):
            share = (100.0 * seconds / total) if total else 0.0
            print("  %-16s %8.4fs  %5.1f%%" % (phase, seconds, share))
        print("  %-16s %8.4fs" % ("total", total))
    else:
        # Side-by-side: one analysis per backend, same workload, so the
        # per-phase columns are directly comparable.
        left, right = backends
        left_plan, left_timings = per_backend[left]
        right_plan, right_timings = per_backend[right]
        print(
            "\nper-phase breakdown (last run each; plans: %s=%s, %s=%s):"
            % (left, left_plan, right, right_plan)
        )
        print("  %-16s %10s %10s %9s" % ("phase", left, right, "ratio"))
        phases = [p for p, _ in _phase_rows(left_timings)]
        for phase, _ in _phase_rows(right_timings):
            if phase not in phases:
                phases.append(phase)
        for phase in phases + ["total"]:
            a = left_timings.get(phase, 0.0)
            b = right_timings.get(phase, 0.0)
            ratio = ("%8.2fx" % (a / b)) if b else "        -"
            print("  %-16s %9.4fs %9.4fs %s" % (phase, a, b, ratio))

    print("\ncProfile hot spots (%s, top %d):" % (args.sort, args.top))
    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.strip_dirs().sort_stats(args.sort).print_stats(args.top)
    print(buffer.getvalue().rstrip())
    return 0


def _parse_endpoint(text: str, default_host: str = "127.0.0.1"):
    """``[HOST:]PORT`` → ``(host, port)``."""
    host, _, port = text.rpartition(":")
    return host or default_host, int(port)


def _cmd_batch(args: argparse.Namespace) -> int:
    import os

    from repro.service.batch import run_batch
    from repro.service.stats import render_stats, write_stats_json

    if not os.path.isdir(args.dir) and not os.path.isfile(args.dir):
        print("error: no such file or directory: %s" % args.dir, file=sys.stderr)
        return 1
    lanes = ()
    if args.lanes:
        from repro.lanes import parse_lane_names

        lanes = tuple(parse_lane_names(args.lanes))
    cache_dir = None
    if not args.no_cache:
        base = args.dir if os.path.isdir(args.dir) else os.path.dirname(args.dir) or "."
        cache_dir = args.cache_dir or os.path.join(base, ".ck-cache")
    fleet = None
    remote_store = None
    try:
        if args.fleet:
            from repro.fleet import FleetCoordinator

            host, port = _parse_endpoint(args.fleet)
            fleet = FleetCoordinator(host=host, port=port).start()
            # Parseable by scripts that launched us with port 0.
            print(
                "ck-analyze batch: fleet coordinator on %s:%d"
                % (fleet.host, fleet.port),
                flush=True,
            )
            if args.fleet_min_workers:
                joined = fleet.wait_for_workers(
                    args.fleet_min_workers, timeout=args.fleet_wait
                )
                print(
                    "ck-analyze batch: %d/%d fleet worker(s) connected"
                    % (joined, args.fleet_min_workers),
                    flush=True,
                )
        if args.fleet_store:
            from repro.fleet import RemoteSummaryStore

            host, port = _parse_endpoint(args.fleet_store)
            remote_store = RemoteSummaryStore(host, port)
        report = run_batch(
            args.dir,
            jobs=args.jobs,
            gmod_method=args.gmod_method,
            cache_dir=cache_dir,
            timeout=args.timeout,
            pattern=args.pattern,
            cache_max_entries=args.cache_max_entries,
            shards=args.shards if args.shards else None,
            fleet=fleet,
            remote_store=remote_store,
            lanes=lanes,
            partition=args.partition,
        )
    finally:
        if fleet is not None:
            fleet.stop()
        if remote_store is not None:
            remote_store.close()
    if not report.results:
        # An empty corpus is a misconfiguration (wrong directory or
        # pattern), not a successful run of zero files.
        print(
            "error: no files matching %r under %s" % (args.pattern, args.dir),
            file=sys.stderr,
        )
        return 1
    for record in report.results:
        if record.ok:
            print(
                "ok    %s (%s)"
                % (record.path, "cached" if record.cached else "analyzed")
            )
        else:
            print(
                "%-5s %s: %s" % (record.status, record.path, record.error),
                file=sys.stderr,
            )
    print(render_stats(report))
    if args.stats_json:
        write_stats_json(report, args.stats_json)
        print("stats written to %s" % args.stats_json)
    return report.exit_code


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import json
    import signal

    from repro.server.daemon import AnalysisServer, ServerConfig

    config = ServerConfig(
        host=args.host,
        port=args.port,
        max_concurrent=args.max_concurrent,
        max_queue=args.max_queue,
        request_timeout=args.timeout,
        max_payload=args.max_payload,
        lru_size=args.lru_size,
        max_sessions=args.max_sessions,
        cache_dir=args.cache_dir,
        cache_max_entries=args.cache_max_entries,
        drain_timeout=args.drain_timeout,
        shard_jobs=args.shard_jobs,
        state_dir=args.state_dir,
        fleet_port=args.fleet_port,
        fleet_host=args.fleet_host,
        fleet_store=args.fleet_store,
    )
    server = AnalysisServer(config)

    async def amain() -> None:
        host, port = await server.start()
        # Parseable by scripts that launched us with --port 0.
        print("ck-analyze serve: listening on %s:%d" % (host, port), flush=True)
        if server.fleet is not None:
            print(
                "ck-analyze serve: fleet coordinator on %s:%d"
                % (server.fleet.host, server.fleet.port),
                flush=True,
            )
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, server.request_shutdown)
            except (NotImplementedError, ValueError):
                pass  # Non-main thread or platform without signal support.
        await server.serve_until_shutdown()

    asyncio.run(amain())
    if args.metrics_json:
        with open(args.metrics_json, "w") as handle:
            json.dump(server.stats_snapshot(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print("metrics written to %s" % args.metrics_json, file=sys.stderr)
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    import json

    from repro.server.client import ServerClient

    fields = {}
    if args.file:
        with open(args.file) as handle:
            fields["source"] = handle.read()
    if args.session:
        fields["session"] = args.session
    if args.select:
        fields["select"] = args.select
    if args.site is not None:
        fields["site"] = args.site
    if args.proc:
        fields["proc"] = args.proc
    if args.variable:
        fields["variable"] = args.variable
    if args.kind:
        fields["kind"] = args.kind
    if args.gmod_method:
        fields["gmod_method"] = args.gmod_method
    if args.shards is not None:
        fields["shards"] = args.shards
    if args.partition:
        fields["partition"] = args.partition
    try:
        with ServerClient(
            port=args.port, host=args.host, timeout=args.timeout
        ) as client:
            response = client.request_raw(args.verb, **fields)
    except ConnectionError as error:
        print("error: %s" % error, file=sys.stderr)
        return 1
    print(json.dumps(response, indent=2, sort_keys=True))
    return 0 if response.get("ok") else 1


def _cmd_worker(args: argparse.Namespace) -> int:
    from repro.fleet.worker import run_worker

    host, port = _parse_endpoint(args.connect)
    return run_worker(
        host,
        port,
        name=args.name,
        max_tasks=args.max_tasks,
        reconnect=args.reconnect,
        reconnect_delay=args.reconnect_delay,
    )


def _cmd_store(args: argparse.Namespace) -> int:
    from repro.fleet.store import serve_store

    return serve_store(
        args.dir, host=args.host, port=args.port, max_entries=args.max_entries
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="ck-analyze",
        description="Interprocedural side-effect analysis (Cooper & Kennedy, PLDI 1988)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    analyze_cmd = sub.add_parser("analyze", help="analyze a CK source file")
    analyze_cmd.add_argument("file")
    analyze_cmd.add_argument(
        "--gmod-method", choices=GMOD_METHODS, default="auto",
        help="global-phase solver (default: auto)",
    )
    analyze_cmd.add_argument(
        "--backend", choices=("auto", "bigint", "numpy"), default="auto",
        help="dense-phase mask backend: big-int solvers, vectorized"
             " bit planes, or per-workload choice (default: auto)",
    )
    analyze_cmd.add_argument("--sections", action="store_true",
                             help="also print regular sections per call site")
    analyze_cmd.add_argument("--lattice", choices=("figure3", "ranges"),
                             default="figure3",
                             help="section lattice instance (with --sections)")
    analyze_cmd.add_argument(
        "--lanes", default="",
        help="extra effect lanes to solve on the shared condensation, "
        "comma-separated (e.g. sections,refalias)",
    )
    analyze_cmd.add_argument("--dot-callgraph", action="store_true",
                             help="emit the call multi-graph as Graphviz DOT")
    analyze_cmd.add_argument("--dot-binding", action="store_true",
                             help="emit the binding multi-graph as Graphviz DOT")
    analyze_cmd.set_defaults(func=_cmd_analyze)

    run_cmd = sub.add_parser("run", help="execute a CK source file")
    run_cmd.add_argument("file")
    run_cmd.add_argument("--inputs", default="", help="comma-separated read inputs")
    run_cmd.add_argument("--max-steps", type=int, default=1_000_000)
    run_cmd.add_argument("--max-depth", type=int, default=500)
    run_cmd.add_argument("--trace", action="store_true",
                         help="print observed per-site MOD sets")
    run_cmd.set_defaults(func=_cmd_run)

    gen_cmd = sub.add_parser("gen", help="generate a random CK program")
    gen_cmd.add_argument("--seed", type=int, default=0)
    gen_cmd.add_argument("--procs", type=int, default=20)
    gen_cmd.add_argument("--globals", dest="globals_", type=int, default=8)
    gen_cmd.add_argument("--depth", type=int, default=1, help="max nesting depth")
    gen_cmd.add_argument("--acyclic", action="store_true", help="forbid recursion")
    gen_cmd.add_argument("-o", "--output", default="")
    gen_cmd.set_defaults(func=_cmd_gen)

    constants_cmd = sub.add_parser(
        "constants", help="interprocedural constant propagation report"
    )
    constants_cmd.add_argument("file")
    constants_cmd.add_argument(
        "--kill-policy", choices=("precise", "worstcase"), default="precise"
    )
    constants_cmd.set_defaults(func=_cmd_constants)

    purity_cmd = sub.add_parser(
        "purity", help="pure/observer/mutator procedure classification"
    )
    purity_cmd.add_argument("file")
    purity_cmd.set_defaults(func=_cmd_purity)

    summary_cmd = sub.add_parser("summary", help="write the analysis summary as JSON")
    summary_cmd.add_argument("file")
    summary_cmd.add_argument("-o", "--output", default="")
    summary_cmd.set_defaults(func=_cmd_summary)

    recompile_cmd = sub.add_parser(
        "recompile", help="diff two summary JSON files for recompilation"
    )
    recompile_cmd.add_argument("old")
    recompile_cmd.add_argument("new")
    recompile_cmd.add_argument(
        "--edited", default="", help="comma-separated edited procedure names"
    )
    recompile_cmd.set_defaults(func=_cmd_recompile)

    profile_cmd = sub.add_parser(
        "profile",
        help="profile one full analysis (cProfile + per-phase breakdown)",
    )
    profile_cmd.add_argument(
        "file", nargs="?", default="",
        help="CK source file (omit to profile a generated workload)",
    )
    profile_cmd.add_argument(
        "--gen-procs", type=int, default=2000,
        help="generated workload size when no file is given (default 2000)",
    )
    profile_cmd.add_argument(
        "--gen-globals", type=int, default=200,
        help="generated workload global count (default 200)",
    )
    profile_cmd.add_argument("--seed", type=int, default=0)
    profile_cmd.add_argument(
        "--repeat", type=int, default=1,
        help="profile this many back-to-back runs (default 1)",
    )
    profile_cmd.add_argument(
        "--gmod-method", choices=GMOD_METHODS, default="auto",
        help="global-phase solver (default: auto)",
    )
    profile_cmd.add_argument(
        "--backend", choices=("auto", "bigint", "numpy", "both"),
        default="auto",
        help="dense-phase mask backend; 'both' runs big-int and"
             " vectorized back to back and prints the per-phase times"
             " side by side",
    )
    profile_cmd.add_argument(
        "--shards", type=int, default=0,
        help="profile the sharded solver with this many shards (0 = monolithic)",
    )
    profile_cmd.add_argument(
        "--jobs", type=int, default=1,
        help="shard worker processes (with --shards)",
    )
    profile_cmd.add_argument(
        "--top", type=int, default=15,
        help="cProfile rows to print (default 15)",
    )
    profile_cmd.add_argument(
        "--sort", choices=("cumulative", "tottime", "calls"),
        default="cumulative", help="cProfile sort key",
    )
    profile_cmd.set_defaults(func=_cmd_profile)

    batch_cmd = sub.add_parser(
        "batch", help="analyze a whole directory of CK files in parallel"
    )
    batch_cmd.add_argument("dir")
    batch_cmd.add_argument(
        "--jobs", type=int, default=0,
        help="worker processes (0 = one per CPU, 1 = no pool)",
    )
    batch_cmd.add_argument(
        "--cache-dir", default="",
        help="summary cache directory (default: DIR/.ck-cache)",
    )
    batch_cmd.add_argument(
        "--no-cache", action="store_true",
        help="disable the content-hash summary cache",
    )
    batch_cmd.add_argument(
        "--cache-max-entries", type=int, default=None,
        help="bound the cache directory (LRU eviction; default unbounded)",
    )
    batch_cmd.add_argument(
        "--stats-json", default="",
        help="write the aggregated corpus stats report to this path",
    )
    batch_cmd.add_argument(
        "--gmod-method", choices=GMOD_METHODS, default="auto",
        help="global-phase solver (default: auto)",
    )
    batch_cmd.add_argument(
        "--timeout", type=float, default=None,
        help="per-file result timeout in seconds (pool mode)",
    )
    batch_cmd.add_argument(
        "--pattern", default="*.ck", help="source file glob (default: *.ck)"
    )
    batch_cmd.add_argument(
        "--shards", type=int, default=0,
        help="solve every file with the sharded subsystem "
             "(0 = monolithic; summaries are bit-identical either way)",
    )
    batch_cmd.add_argument(
        "--partition", choices=("separator", "greedy", "chunk"),
        default="greedy",
        help="shard partitioner strategy (with --shards; summaries are"
             " bit-identical across strategies)",
    )
    batch_cmd.add_argument(
        "--lanes", default="",
        help="extra effect lanes to solve per file, comma-separated "
             "(e.g. sections,refalias); lane blocks ride the payloads "
             "and the stats report",
    )
    batch_cmd.add_argument(
        "--fleet", default="",
        help="host a fleet coordinator on [HOST:]PORT (0 = ephemeral) and"
             " fan per-shard work out to connected ck-analyze workers;"
             " results stay bit-identical to the in-process run",
    )
    batch_cmd.add_argument(
        "--fleet-min-workers", type=int, default=0,
        help="wait for this many workers before starting (with --fleet)",
    )
    batch_cmd.add_argument(
        "--fleet-wait", type=float, default=30.0,
        help="max seconds to wait for --fleet-min-workers (default 30)",
    )
    batch_cmd.add_argument(
        "--fleet-store", default="",
        help="consult a fleet summary store at [HOST:]PORT after a local"
             " cache miss and publish fresh results to it",
    )
    batch_cmd.set_defaults(func=_cmd_batch)

    shard_cmd = sub.add_parser(
        "shard", help="analyze one file with the sharded whole-program solver"
    )
    shard_cmd.add_argument("file")
    shard_cmd.add_argument(
        "--shards", type=int, default=4,
        help="requested shard count (clamped to the SCC count; default 4)",
    )
    shard_cmd.add_argument(
        "--jobs", type=int, default=1,
        help="shard worker processes (0 = one per CPU, 1 = in-process)",
    )
    shard_cmd.add_argument(
        "--partition", "--strategy", dest="strategy",
        choices=("separator", "greedy", "chunk"), default="greedy",
        help="partitioner strategy: separator (nested dissection with"
             " wave schedule), greedy edge-cut (default), or chunk"
             " (contiguous topological)",
    )
    shard_cmd.add_argument(
        "--stats-json", action="store_true",
        help="print the shard_info block as JSON instead of the report",
    )
    shard_cmd.set_defaults(func=_cmd_shard)

    serve_cmd = sub.add_parser(
        "serve", help="run the analysis daemon (line-delimited JSON over TCP)"
    )
    serve_cmd.add_argument("--host", default="127.0.0.1")
    serve_cmd.add_argument(
        "--port", type=int, default=7947,
        help="TCP port (0 = ephemeral; the bound port is printed)",
    )
    serve_cmd.add_argument(
        "--max-concurrent", type=int, default=4,
        help="solver threads (concurrent analyses)",
    )
    serve_cmd.add_argument(
        "--max-queue", type=int, default=16,
        help="waiting analyses beyond the pool before 'overloaded'",
    )
    serve_cmd.add_argument(
        "--timeout", type=float, default=30.0,
        help="per-request timeout in seconds",
    )
    serve_cmd.add_argument(
        "--max-payload", type=int, default=4 * 1024 * 1024,
        help="max request line length in bytes",
    )
    serve_cmd.add_argument(
        "--lru-size", type=int, default=64,
        help="live summaries kept in the in-memory LRU",
    )
    serve_cmd.add_argument(
        "--max-sessions", type=int, default=32,
        help="named incremental sessions kept resident",
    )
    serve_cmd.add_argument(
        "--cache-dir", default="",
        help="optional on-disk summary cache (shared with batch)",
    )
    serve_cmd.add_argument(
        "--cache-max-entries", type=int, default=None,
        help="bound the disk cache (LRU eviction; default unbounded)",
    )
    serve_cmd.add_argument(
        "--drain-timeout", type=float, default=10.0,
        help="grace period for in-flight requests on shutdown",
    )
    serve_cmd.add_argument(
        "--shard-jobs", type=int, default=1,
        help="shard worker processes for analyze requests with 'shards'"
             " (default 1: in-process)",
    )
    serve_cmd.add_argument(
        "--state-dir", default="",
        help="persist session summaries + dependency indexes here so"
             " incremental sessions survive a daemon restart",
    )
    serve_cmd.add_argument(
        "--metrics-json", default="",
        help="write the final stats snapshot to this path on exit",
    )
    serve_cmd.add_argument(
        "--fleet-port", type=int, default=None,
        help="also host a fleet coordinator on this port (0 = ephemeral);"
             " sharded analyze requests fan out to connected workers",
    )
    serve_cmd.add_argument(
        "--fleet-host", default="127.0.0.1",
        help="fleet coordinator bind host (with --fleet-port)",
    )
    serve_cmd.add_argument(
        "--fleet-store", default="",
        help="consult a fleet summary store at [HOST:]PORT between the"
             " disk cache and a fresh solve",
    )
    serve_cmd.set_defaults(func=_cmd_serve)

    query_cmd = sub.add_parser(
        "query", help="send one request to a running analysis daemon"
    )
    query_cmd.add_argument(
        "verb",
        choices=("analyze", "update", "query", "stats", "ping", "shutdown"),
    )
    query_cmd.add_argument("--host", default="127.0.0.1")
    query_cmd.add_argument("--port", type=int, default=7947)
    query_cmd.add_argument("--timeout", type=float, default=60.0)
    query_cmd.add_argument(
        "--file", default="", help="CK source file (analyze / update)"
    )
    query_cmd.add_argument("--session", default="", help="session name")
    query_cmd.add_argument(
        "--select", default="",
        help="query selector: procedures | proc | site | sites | who_modifies",
    )
    query_cmd.add_argument("--site", type=int, default=None, help="call-site id")
    query_cmd.add_argument("--proc", default="", help="qualified procedure name")
    query_cmd.add_argument("--variable", default="", help="variable name")
    query_cmd.add_argument("--kind", default="", choices=("", "mod", "use"))
    query_cmd.add_argument(
        "--gmod-method", default="", choices=("",) + GMOD_METHODS,
    )
    query_cmd.add_argument(
        "--shards", type=int, default=None,
        help="solve with the sharded subsystem (analyze verb)",
    )
    query_cmd.add_argument(
        "--partition", default="",
        choices=("", "separator", "greedy", "chunk"),
        help="shard partitioner strategy (with --shards)",
    )
    query_cmd.set_defaults(func=_cmd_query)

    worker_cmd = sub.add_parser(
        "worker", help="join an analysis fleet and execute shard tasks"
    )
    worker_cmd.add_argument(
        "--connect", required=True, metavar="HOST:PORT",
        help="coordinator address (from batch --fleet / serve --fleet-port)",
    )
    worker_cmd.add_argument(
        "--name", default="", help="worker name shown in fleet stats"
    )
    worker_cmd.add_argument(
        "--max-tasks", type=int, default=None,
        help="drain and exit after this many tasks (rolling restarts)",
    )
    worker_cmd.add_argument(
        "--reconnect", action="store_true",
        help="redial the coordinator when the connection drops",
    )
    worker_cmd.add_argument(
        "--reconnect-delay", type=float, default=1.0,
        help="seconds between redial attempts (default 1)",
    )
    worker_cmd.set_defaults(func=_cmd_worker)

    store_cmd = sub.add_parser(
        "store", help="run the fleet's content-addressed summary store"
    )
    store_cmd.add_argument(
        "--dir", required=True, help="cache directory backing the store"
    )
    store_cmd.add_argument("--host", default="127.0.0.1")
    store_cmd.add_argument(
        "--port", type=int, default=0,
        help="TCP port (0 = ephemeral; the bound port is printed)",
    )
    store_cmd.add_argument(
        "--max-entries", type=int, default=None,
        help="bound the backing cache (LRU eviction; default unbounded)",
    )
    store_cmd.set_defaults(func=_cmd_store)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except CkError as error:
        print("error: %s" % error, file=sys.stderr)
        return 1
    except OSError as error:
        print("error: %s" % error, file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
