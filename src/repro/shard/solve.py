"""Hierarchical (sharded) solving of the paper's propagation systems.

The three-phase shape — shard-local condense, global stitch over the
boundary nodes, per-shard back-substitution — applied to both solver
graphs:

1. **summarize** (parallel): every shard solves its subgraph
   symbolically and emits, for each node another shard imports, a
   transfer summary ``(const, deps)`` (:mod:`repro.shard.boundary`);
2. **stitch** (serial, small): the boundary nodes form a dependency
   graph whose edges are the summaries' deps.  Because the
   partitioner never splits an SCC across shards
   (:mod:`repro.shard.partition`), this graph is acyclic — a cycle
   through two shards would be a spanning SCC — so one reverse
   topological sweep fixes every boundary value;
3. **back-substitute** (parallel): with exact import values, each
   shard's local least solution *is* the global least solution
   restricted to that shard, so a plain concrete re-solve finishes the
   job.

The result is bit-identical to the monolithic solvers: both compute
the least solution of the same boolean system (equation (6) for
``RMOD``, equation (4) for ``GMOD``), and least solutions are unique.
The differential suite asserts this over the 30-program corpus and a
randomized fuzz sweep for shard counts {1, 2, 4, 8}.

``solve_hierarchical`` is generic over the canonical system described
in :mod:`repro.shard.boundary`; :func:`solve_rmod_sharded` and
:func:`solve_gmod_sharded` instantiate it, and
:func:`analyze_side_effects_sharded` is the drop-in pipeline entry
point (same phases, same summary object, plus ``shard_info``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.core.bitvec import OpCounter, iter_bits
from repro.core.local import LocalAnalysis
from repro.core.rmod import RmodResult
from repro.core.varsets import EffectKind, VariableUniverse
from repro.graphs.binding import BindingMultiGraph
from repro.graphs.callgraph import CallMultiGraph
from repro.graphs.scc import tarjan_scc
from repro.lang.symbols import ResolvedProgram
from repro.shard.boundary import (
    BacksubResult,
    ShardProblem,
    ShardSummary,
    _solve_concrete,
    backsub_shard,
    stitch_tree,
    summarize_shard,
)
from repro.shard import wire
from repro.shard.partition import ShardPlan, partition_graph
from repro.shard.runner import ShardRunner


@dataclass
class HierarchicalStats:
    """What one hierarchical solve did (one graph, one kind)."""

    num_shards: int = 1
    cut_edges: int = 0
    boundary_nodes: int = 0
    maskless_shards: int = 0
    masked_shards: int = 0
    summarize_time: float = 0.0
    stitch_time: float = 0.0
    backsub_time: float = 0.0
    #: Max in-worker seconds — the parallel critical path.
    summarize_span: float = 0.0
    backsub_span: float = 0.0
    steps: int = 0

    def to_dict(self) -> Dict:
        return {
            "num_shards": self.num_shards,
            "cut_edges": self.cut_edges,
            "boundary_nodes": self.boundary_nodes,
            "maskless_shards": self.maskless_shards,
            "masked_shards": self.masked_shards,
            "summarize_time": self.summarize_time,
            "stitch_time": self.stitch_time,
            "backsub_time": self.backsub_time,
            "summarize_span": self.summarize_span,
            "backsub_span": self.backsub_span,
            "steps": self.steps,
        }

    def accumulate(self, other: "HierarchicalStats") -> None:
        self.num_shards = max(self.num_shards, other.num_shards)
        self.cut_edges = max(self.cut_edges, other.cut_edges)
        self.boundary_nodes = max(self.boundary_nodes, other.boundary_nodes)
        self.maskless_shards += other.maskless_shards
        self.masked_shards += other.masked_shards
        self.summarize_time += other.summarize_time
        self.stitch_time += other.stitch_time
        self.backsub_time += other.backsub_time
        self.summarize_span += other.summarize_span
        self.backsub_span += other.backsub_span
        self.steps += other.steps


def _stitch(
    problems: List[ShardProblem],
    summaries: List[ShardSummary],
    plan: ShardPlan,
    local_of: List[int],
) -> Tuple[Dict[int, int], int]:
    """Solve the boundary system; returns node id → value, and steps.

    The boundary dependency graph is acyclic by the partitioner's
    SCC invariant; the sweep still runs through Tarjan so a violation
    would converge (and be caught by the differential tests) instead
    of corrupting results silently.

    Separator plans skip the global system entirely: their hierarchy's
    wave schedule decomposes the stitch into one small step per shard
    (:func:`repro.shard.boundary.stitch_tree`), bottom-up along the
    tree, each touching only that separator's carriers.
    """
    hierarchy = getattr(plan, "hierarchy", None)
    if hierarchy is not None and not hierarchy.fallback and hierarchy.waves:
        return stitch_tree(problems, summaries, hierarchy)
    boundary: List[int] = sorted(
        {node for problem in problems for node in problem.imports}
    )
    if not boundary:
        return {}, 0
    index_of = {node: index for index, node in enumerate(boundary)}
    const = [0] * len(boundary)
    # deps[b] → list of (boundary index, mask) — mask is -1 for
    # maskless summaries.
    deps: List[List[Tuple[int, int]]] = [[] for _ in boundary]
    steps = 0
    for bindex, node in enumerate(boundary):
        owner = plan.shard_of[node]
        problem = problems[owner]
        summary = summaries[owner]
        local = local_of[node]
        const[bindex] = summary.const[local]
        entry = summary.deps[local]
        if problem.masked:
            for import_index, mask in entry.items():
                target = problem.imports[import_index]
                deps[bindex].append((index_of[target], mask))
        else:
            # Maskless summaries encode the dependency set as a bit
            # mask over import indices; decoding it into edge records
            # is inherently per-bit (each bit names a different target
            # node).  Bounded by the cut size, not the graph — the
            # steps tally below charges it.
            for import_index in iter_bits(entry):
                target = problem.imports[import_index]
                deps[bindex].append((index_of[target], -1))
        steps += 1 + len(deps[bindex])

    successors = [[target for target, _ in deps[b]] for b in range(len(boundary))]
    comp_of, comps = tarjan_scc(len(boundary), successors)
    value = [0] * len(boundary)
    for comp_index, members in enumerate(comps):
        for node in members:
            acc = const[node]
            for target, mask in deps[node]:
                if comp_of[target] != comp_index:
                    acc |= value[target] & mask
            value[node] = acc
        changed = len(members) > 1
        while changed:
            changed = False
            for node in members:
                acc = value[node]
                for target, mask in deps[node]:
                    if comp_of[target] == comp_index:
                        acc |= value[target] & mask
                steps += len(deps[node])
                if acc != value[node]:
                    value[node] = acc
                    changed = True
    return {node: value[index_of[node]] for node in boundary}, steps


class ShardedSystem:
    """One graph, partitioned once, solvable for many seed vectors.

    Splitting the canonical system along a :class:`ShardPlan` — local
    adjacency, import tables, export sets, shard-local SCC structure,
    per-component strip unions, per-node seed masks — depends only on
    the graph and the plan, not on the seeds.  The pipeline solves the
    same two graphs for ``MOD`` and ``USE``, so this structure is
    built once and each :meth:`solve` call only swaps seeds in and
    re-runs the three phases.

    ``carrier``, when given, must be a positive mask satisfying
    ``seeds[n] & ~strips[n] ⊆ carrier`` for every seed vector this
    system will solve (see :func:`narrow_carrier`).  It turns the
    per-node seed masks into narrow positive ints, so seed stripping —
    and everything downstream, since propagated values stay inside the
    carrier — costs O(carrier width) instead of O(universe width).
    """

    def __init__(
        self,
        num_nodes: int,
        successors: Sequence[Sequence[int]],
        strips: Optional[Sequence[int]],
        plan: ShardPlan,
        carrier: Optional[int] = None,
    ):
        self.num_nodes = num_nodes
        self.strips = strips
        self.plan = plan
        self.carrier = carrier
        local_of = [0] * num_nodes
        for members in plan.shards:
            for index, node in enumerate(members):
                local_of[node] = index
        self.local_of = local_of

        # A node's receive mask can only matter if the node both pulls
        # something in (has successors) and is pulled from (has
        # predecessors) — see _select_engines.
        has_pred = [False] * num_nodes
        for node in range(num_nodes):
            for q in successors[node]:
                has_pred[q] = True

        # Shard-local SCC structure, derived from the partitioner's
        # condensation when available (one global pass instead of one
        # Tarjan run per shard): components never span shards, and the
        # global reverse topological order restricts to a valid
        # shard-local one.
        shard_comps: Optional[List[List[List[int]]]] = None
        cond = plan.condensation
        if cond is not None:
            shard_comps = [[] for _ in plan.shards]
            for comp_members in cond.components:
                owner = plan.shard_of[comp_members[0]]
                shard_comps[owner].append(
                    [local_of[node] for node in comp_members]
                )

        problems: List[ShardProblem] = []
        imported_by: List[List[int]] = [[] for _ in range(len(plan.shards))]
        consumer_strips: List[int] = []
        for shard_id, members in enumerate(plan.shards):
            succ: List[List[int]] = []
            cross: List[List[int]] = []
            import_index: Dict[int, int] = {}
            imports: List[int] = []
            strip_union = 0
            for node in members:
                local_succ: List[int] = []
                local_cross: List[int] = []
                for q in successors[node]:
                    if plan.shard_of[q] == shard_id:
                        local_succ.append(local_of[q])
                    else:
                        index = import_index.get(q)
                        if index is None:
                            index = len(imports)
                            import_index[q] = index
                            imports.append(q)
                        local_cross.append(index)
                succ.append(local_succ)
                cross.append(local_cross)
                if (
                    strips is not None
                    and has_pred[node]
                    and (local_succ or local_cross)
                ):
                    strip_union |= strips[node]
            for q in imports:
                imported_by[plan.shard_of[q]].append(q)
            if strips is None:
                shard_strips = None
            elif carrier is not None:
                # Everything a shard ever holds — seeds and propagated
                # values — lives inside the carrier, so strip masks can
                # be narrowed to it: ``v & ~s == v & ~(s & carrier)``
                # for ``v ⊆ carrier``.  This turns the problems'
                # dominant payload (full-universe strip ints) into
                # carrier-width ones, which is what makes shipping them
                # to pool workers affordable (see repro.shard.wire).
                shard_strips = [strips[node] & carrier for node in members]
            else:
                shard_strips = [strips[node] for node in members]
            problem = ShardProblem(
                shard_id=shard_id,
                nodes=list(members),
                succ=succ,
                cross=cross,
                imports=imports,
                seeds=[],
                strips=shard_strips,
                exports=[],
            )
            if shard_comps is not None:
                problem.comps = shard_comps[shard_id]
                comp_of = [0] * len(members)
                for comp_index, comp in enumerate(problem.comps):
                    for member in comp:
                        comp_of[member] = comp_index
                problem.comp_of = comp_of
            else:
                problem.comp_of, problem.comps = tarjan_scc(
                    len(members), succ
                )
            if strips is not None:
                pstrips = problem.strips
                comp_bite: List[int] = []
                for comp in problem.comps:
                    if len(comp) == 1:
                        comp_bite.append(pstrips[comp[0]])
                    else:
                        acc = 0
                        for member in comp:
                            acc |= pstrips[member]
                        comp_bite.append(acc)
                problem.comp_bite = comp_bite
            problems.append(problem)
            consumer_strips.append(strip_union)
        for shard_id, problem in enumerate(problems):
            exported = sorted(set(imported_by[shard_id]))
            problem.exports = [local_of[node] for node in exported]
        # Per-node seed masks, precomputed so each solve() pays one AND
        # per node.  With a carrier (a narrow positive superset of
        # every strippable seed bit) the masks are narrow positive
        # ints, so the ANDs cost O(carrier width) instead of
        # O(universe width).
        if strips is None:
            self._seed_masks: Optional[List[List[int]]] = None
        elif carrier is not None:
            # carrier & ~strips[n], written without the full-width
            # negation: both AND and XOR stay inside the carrier.
            self._seed_masks = [
                [
                    carrier ^ (carrier & strips[node])
                    for node in problem.nodes
                ]
                for problem in problems
            ]
        else:
            self._seed_masks = [
                [~strips[node] for node in problem.nodes]
                for problem in problems
            ]
        self.problems = problems
        self.consumer_strips = consumer_strips
        self.have_boundary = any(problem.imports for problem in problems)
        #: Quotient-graph SCC structure for the engine check's
        #: reachable-seed sweep (seed-independent).
        self.quotient_comp_of, self.quotient_comps = tarjan_scc(
            len(plan.shards), plan.quotient
        )
        #: Acyclic shard quotient (always true for "chunk" plans) —
        #: enables the direct one-pass solve when running in-process
        #: and the wave-parallel concrete solve under a pool.
        self.quotient_acyclic = all(
            len(comp) == 1 for comp in self.quotient_comps
        )
        #: Lazily-built wire registrations ``(key, static blob)`` per
        #: problem — computed on the first pooled solve, reused by
        #: every later map call (see :mod:`repro.shard.wire`).
        self._wire: Optional[List[Tuple[int, bytes]]] = None

    def _wire_statics(self) -> List[Tuple[int, bytes]]:
        if self._wire is None:
            self._wire = [
                wire.encode_static(problem) for problem in self.problems
            ]
        return self._wire

    def _select_engines(self) -> None:
        """Static check: can an imported bit be stripped in a shard?

        For each shard ``t`` let ``S_t`` be the union of its
        (pre-stripped) seeds and ``R_t`` the union of ``S_u`` over
        every shard ``u`` reachable from ``t`` in the quotient graph
        (including ``t``).  Every value a shard exports satisfies
        ``P ⊆ R_t`` — bits only enter the system through seeds.  A
        shard ``s`` may use the maskless dependency engine iff::

            (OR over imports i of R_{shard(i)}) & consumer_strips(s) == 0

        where ``consumer_strips`` unions the strips of nodes that both
        pull and are pulled from — a strip at a node nobody consumes
        (the main program: no callers) cannot affect any other value.
        ``RMOD`` has no strips and always passes; ``GMOD`` of flat
        programs passes because imported bits are global (equation (4)
        makes ``GMOD(q) − LOCAL(q)`` of a flat procedure all-global)
        while strips are locals.  Shards that fail — nested-program
        shapes — fall back to the exact masked engine.
        """
        plan = self.plan
        problems = self.problems
        seed_union = [0] * len(problems)
        for shard_id, problem in enumerate(problems):
            acc = 0
            for seed in problem.seeds:
                acc |= seed
            seed_union[shard_id] = acc

        comp_reach = [0] * len(self.quotient_comps)
        comp_of = self.quotient_comp_of
        for comp_index, members in enumerate(self.quotient_comps):
            acc = 0
            for shard_id in members:
                acc |= seed_union[shard_id]
                for succ in plan.quotient[shard_id]:
                    acc |= comp_reach[comp_of[succ]]
            comp_reach[comp_index] = acc

        for shard_id, problem in enumerate(problems):
            if problem.strips is None:
                problem.masked = False
                continue
            incoming = 0
            for node in problem.imports:
                incoming |= comp_reach[comp_of[plan.shard_of[node]]]
            problem.masked = (incoming & self.consumer_strips[shard_id]) != 0


    def solve(
        self,
        seeds: Sequence[int],
        runner: ShardRunner,
        emit: str = "value",
    ) -> Tuple[List[int], HierarchicalStats]:
        """Solve for one seed vector.

        ``seeds`` are the raw per-node seeds (stripped internally
        against the system's strips); ``emit`` selects the output —
        ``"value"`` returns ``P(n)``, ``"succ_or"`` returns
        ``D(n) = OR_{n->q} P(q)``.
        """
        plan = self.plan
        stats = HierarchicalStats(
            num_shards=plan.num_shards, cut_edges=plan.cut_edges
        )
        if self.num_nodes == 0:
            return [], stats
        problems = self.problems
        for shard_id, problem in enumerate(problems):
            if self._seed_masks is None:
                problem.seeds = [seeds[node] for node in problem.nodes]
            else:
                masks = self._seed_masks[shard_id]
                problem.seeds = [
                    seeds[node] & mask
                    for node, mask in zip(problem.nodes, masks)
                ]
            problem.emit = emit
        self._select_engines()
        stats.maskless_shards = sum(1 for p in problems if not p.masked)
        stats.masked_shards = sum(1 for p in problems if p.masked)
        stats.boundary_nodes = sum(len(p.exports) for p in problems)

        # Fan out only when a pool exists, there is more than one shard
        # to feed it, *and* the graph is big enough that per-task wire
        # encoding plus pool round-trips cost less than the in-worker
        # compute they buy (same economics as the per-wave gate in
        # ``_solve_waves``; fleets advertise ``min_fanout_nodes=0``).
        fanout = (
            runner.jobs > 1
            and len(problems) > 1
            and self.num_nodes >= runner.min_fanout_nodes
        )
        if not fanout and self.have_boundary and self.quotient_acyclic:
            # No pool worth engaging and an acyclic shard quotient: the
            # summaries and the stitch buy nothing — solve shards in
            # reverse topological quotient order, each reading final
            # import values straight off already-solved shards.  One
            # concrete pass over every shard, same least solution.
            return self._solve_direct(stats, emit)

        use_wire = fanout
        hierarchy = getattr(plan, "hierarchy", None)
        serial_chain = (
            hierarchy is not None
            and not hierarchy.fallback
            and bool(hierarchy.waves)
            and hierarchy.max_wave_width <= 1
        )
        if use_wire and self.quotient_acyclic and not serial_chain:
            # A pool *and* an acyclic quotient: concrete solves in
            # topological waves — independent shards of a wave fan out
            # over the pool with final import values, so the symbolic
            # summarize phase (a second full solve's worth of work) is
            # never paid.  Same least solution as the direct path.
            return self._solve_waves(stats, emit, runner)
        # A separator plan whose waves are all singletons (a serial
        # chain) gains nothing from wave dispatch — summarize every
        # shard at once, tree-stitch, back-substitute every shard at
        # once: full fan-out on both heavy phases instead of none.

        statics = self._wire_statics() if use_wire else None
        seed_blobs = (
            [wire.encode_masks(problem.seeds) for problem in problems]
            if use_wire
            else None
        )

        import_values: Dict[int, int] = {}
        if self.have_boundary:
            tick = time.perf_counter()
            if use_wire:
                summaries = runner.map(
                    wire.summarize_shard_wire,
                    [
                        (
                            statics[index][0],
                            statics[index][1],
                            problem.masked,
                            seed_blobs[index],
                        )
                        for index, problem in enumerate(problems)
                    ],
                    label="summarize",
                    nodes=self.num_nodes,
                    decode=lambda blob, index: wire.decode_summary(
                        blob, problems[index]
                    ),
                )
            else:
                summaries = runner.map(
                    summarize_shard,
                    problems,
                    label="summarize",
                    nodes=self.num_nodes,
                )
            stats.summarize_time = time.perf_counter() - tick
            stats.summarize_span = max(s.elapsed for s in summaries)
            stats.steps += sum(s.steps for s in summaries)

            tick = time.perf_counter()
            import_values, stitch_steps = _stitch(
                problems, summaries, plan, self.local_of
            )
            stats.stitch_time = time.perf_counter() - tick
            stats.steps += stitch_steps

        tick = time.perf_counter()
        if use_wire:
            results = runner.map(
                wire.backsub_shard_wire,
                [
                    (
                        statics[index][0],
                        statics[index][1],
                        emit,
                        seed_blobs[index],
                        wire.encode_masks(
                            [import_values[node] for node in problem.imports]
                        ),
                    )
                    for index, problem in enumerate(problems)
                ],
                label="backsub",
                nodes=self.num_nodes,
                decode=lambda blob, index: wire.decode_backsub(
                    blob, problems[index]
                )[0],
            )
        else:
            results = runner.map(
                backsub_shard,
                [
                    (problem, [import_values[node] for node in problem.imports])
                    for problem in problems
                ],
                label="backsub",
                nodes=self.num_nodes,
            )
        stats.backsub_time = time.perf_counter() - tick
        stats.backsub_span = max(r.elapsed for r in results)
        stats.steps += sum(r.steps for r in results)

        out = [0] * self.num_nodes
        for problem, result in zip(problems, results):
            for local, node in enumerate(problem.nodes):
                out[node] = result.values[local]
        return out, stats

    def _solve_waves(
        self, stats: HierarchicalStats, emit: str, runner: ShardRunner
    ) -> Tuple[List[int], HierarchicalStats]:
        """Concrete wave-parallel solve over an acyclic shard quotient.

        Shards are grouped by depth in the quotient DAG (sinks first);
        every shard in a wave has final import values when the wave
        starts, so the wave's shards run :func:`_solve_concrete`
        independently — over the pool through the wire codec when the
        wave is wide, in-process when it is a singleton (a one-shard
        wave gains nothing from a worker round-trip).  Total work is
        one concrete pass per shard, exactly the direct path's.
        """
        tick = time.perf_counter()
        plan = self.plan
        problems = self.problems
        hierarchy = getattr(plan, "hierarchy", None)
        if hierarchy is not None and hierarchy.waves:
            # Separator plans carry the callee-first wave schedule.
            waves = hierarchy.waves
        else:
            # Depth per shard: sinks at 0.  quotient_comps is in
            # reverse topological order (all singletons here), so
            # every quotient successor's depth is final before its
            # importer's is set.
            depth = [0] * len(problems)
            for comp in self.quotient_comps:
                shard_id = comp[0]
                best = 0
                for succ in plan.quotient[shard_id]:
                    if depth[succ] >= best:
                        best = depth[succ] + 1
                depth[shard_id] = best
            waves = [[] for _ in range(max(depth) + 1)]
            for shard_id, d in enumerate(depth):
                waves[d].append(shard_id)

        statics = None
        #: Final P value per exported global node id.
        value_at: Dict[int, int] = {}
        out = [0] * self.num_nodes
        steps = 0
        span = 0.0
        for wave_index, wave in enumerate(waves):
            wave_nodes = sum(len(problems[s].nodes) for s in wave)
            if (
                len(wave) == 1
                or runner.jobs <= 1
                or wave_nodes < runner.min_fanout_nodes
            ):
                for shard_id in wave:
                    problem = problems[shard_id]
                    imports = [value_at[node] for node in problem.imports]
                    value, shard_steps = _solve_concrete(problem, imports)
                    steps += shard_steps
                    for local in problem.exports:
                        value_at[problem.nodes[local]] = value[local]
                    if emit == "succ_or":
                        succ = problem.succ
                        cross = problem.cross
                        for local, node in enumerate(problem.nodes):
                            acc = 0
                            for q in succ[local]:
                                acc |= value[q]
                            for i in cross[local]:
                                acc |= imports[i]
                            steps += len(succ[local]) + len(cross[local])
                            out[node] = acc
                    else:
                        for local, node in enumerate(problem.nodes):
                            out[node] = value[local]
                continue
            if statics is None:
                statics = self._wire_statics()
            if wave_index + 1 < len(waves):
                # Warm the next wave's static blobs while this wave
                # computes (no-op locally; the fleet runner pushes
                # them to idle workers).
                runner.prefetch(
                    [statics[s] for s in waves[wave_index + 1]]
                )
            exports_of: Dict[int, List[int]] = {}

            def _decode(blob: bytes, index: int, wave=wave) -> BacksubResult:
                shard_id = wave[index]
                result, export_values = wire.decode_backsub(
                    blob, problems[shard_id]
                )
                exports_of[shard_id] = export_values
                return result

            results = runner.map(
                wire.backsub_shard_wire,
                [
                    (
                        statics[shard_id][0],
                        statics[shard_id][1],
                        emit,
                        wire.encode_masks(problems[shard_id].seeds),
                        wire.encode_masks(
                            [
                                value_at[node]
                                for node in problems[shard_id].imports
                            ]
                        ),
                    )
                    for shard_id in wave
                ],
                label="backsub",
                decode=_decode,
            )
            for shard_id, result in zip(wave, results):
                problem = problems[shard_id]
                steps += result.steps
                if result.elapsed > span:
                    span = result.elapsed
                for local, value in zip(
                    problem.exports, exports_of[shard_id]
                ):
                    value_at[problem.nodes[local]] = value
                for local, node in enumerate(problem.nodes):
                    out[node] = result.values[local]
        stats.backsub_time = time.perf_counter() - tick
        stats.backsub_span = span
        stats.steps += steps
        return out, stats

    def _solve_direct(
        self, stats: HierarchicalStats, emit: str
    ) -> Tuple[List[int], HierarchicalStats]:
        tick = time.perf_counter()
        plan = self.plan
        local_of = self.local_of
        values_of: List[Optional[List[int]]] = [None] * len(self.problems)
        out = [0] * self.num_nodes
        steps = 0
        # Reverse topological order over the quotient: every singleton
        # component in Tarjan's emission order (sinks first), so a
        # shard's imports are final before it runs.
        for comp in self.quotient_comps:
            shard_id = comp[0]
            problem = self.problems[shard_id]
            imports = [
                values_of[plan.shard_of[node]][local_of[node]]
                for node in problem.imports
            ]
            value, shard_steps = _solve_concrete(problem, imports)
            values_of[shard_id] = value
            steps += shard_steps
            if emit == "succ_or":
                for local, node in enumerate(problem.nodes):
                    acc = 0
                    for q in problem.succ[local]:
                        acc |= value[q]
                    for i in problem.cross[local]:
                        acc |= imports[i]
                    steps += len(problem.succ[local]) + len(
                        problem.cross[local]
                    )
                    out[node] = acc
            else:
                for local, node in enumerate(problem.nodes):
                    out[node] = value[local]
        stats.backsub_time = time.perf_counter() - tick
        stats.steps += steps
        return out, stats


def solve_hierarchical(
    num_nodes: int,
    successors: Sequence[Sequence[int]],
    seeds: Sequence[int],
    strips: Optional[Sequence[int]],
    plan: ShardPlan,
    runner: ShardRunner,
    emit: str = "value",
) -> Tuple[List[int], HierarchicalStats]:
    """One-shot convenience over :class:`ShardedSystem`."""
    system = ShardedSystem(num_nodes, successors, strips, plan)
    return system.solve(seeds, runner, emit=emit)


# ---------------------------------------------------------------------------
# Instantiations: RMOD on β, GMOD on the call multi-graph.
# ---------------------------------------------------------------------------


def narrow_carrier(resolved: ResolvedProgram, universe: VariableUniverse) -> int:
    """A narrow superset of every bit equation (4) can propagate.

    ``P(p) = GMOD(p) − LOCAL(p)`` only carries variables that outlive
    some procedure's strip: globals, plus the locals of procedures
    that have nested children (visible to — hence strippable by — a
    descendant, never by the owner).  For flat programs this is
    exactly the global mask, which occupies the contiguous low uids —
    a narrow positive int, while ``~LOCAL(p)`` masks are full-universe
    wide.  Seeds satisfy ``IMOD+(p) ⊆ visible(p)``, so
    ``IMOD+(p) & ~LOCAL(p) ⊆ carrier`` always holds.
    """
    has_children = [False] * resolved.num_procs
    for proc in resolved.procs:
        if proc.parent is not None:
            has_children[proc.parent.pid] = True
    carrier = universe.global_mask
    for proc in resolved.procs:
        if has_children[proc.pid]:
            carrier |= universe.local_mask[proc.pid]
    return carrier


def _as_system(
    plan_or_system: Union[ShardPlan, ShardedSystem],
    num_nodes: int,
    successors: Sequence[Sequence[int]],
    strips: Optional[Sequence[int]],
    carrier: Optional[int] = None,
) -> ShardedSystem:
    if isinstance(plan_or_system, ShardedSystem):
        return plan_or_system
    return ShardedSystem(
        num_nodes, successors, strips, plan_or_system, carrier=carrier
    )


def solve_rmod_sharded(
    graph: BindingMultiGraph,
    local: LocalAnalysis,
    kind: EffectKind,
    plan: Union[ShardPlan, ShardedSystem],
    runner: ShardRunner,
    counter: Optional[OpCounter] = None,
) -> Tuple[RmodResult, HierarchicalStats]:
    """Figure 1's problem, solved hierarchically.

    Equation (6) is the canonical system with 0/1 seeds (``IMOD`` bit
    per β node) and no receive masks, so every shard runs the maskless
    engine and the per-shard sweeps stay single-bit, one-pass.
    Produces an :class:`~repro.core.rmod.RmodResult` bit-identical to
    :func:`~repro.core.rmod.solve_rmod`.  ``plan`` may be a prebuilt
    :class:`ShardedSystem` over β to amortise shard construction
    across effect kinds.
    """
    if counter is None:
        counter = OpCounter()
    resolved = graph.resolved
    initial = local.initial(kind)
    num_nodes = graph.num_formals
    seeds = [
        (initial[formal.proc.pid] >> formal.uid) & 1 for formal in graph.formals
    ]
    system = _as_system(plan, num_nodes, graph.successors, None)
    values, stats = system.solve(seeds, runner, emit="value")
    counter.single_bit_steps += stats.steps
    node_value = [bool(v) for v in values]
    proc_mask = [0] * resolved.num_procs
    for node, formal in enumerate(graph.formals):
        if node_value[node]:
            proc_mask[formal.proc.pid] |= 1 << formal.uid
    result = RmodResult(
        kind=kind,
        graph=graph,
        node_value=node_value,
        proc_mask=proc_mask,
        counter=counter,
    )
    return result, stats


def solve_gmod_sharded(
    call_graph: CallMultiGraph,
    imod_plus: Sequence[int],
    universe: VariableUniverse,
    kind: EffectKind,
    plan: Union[ShardPlan, ShardedSystem],
    runner: ShardRunner,
    counter: Optional[OpCounter] = None,
) -> Tuple[List[int], HierarchicalStats]:
    """Equation (4), solved hierarchically.

    Substituting ``P(p) = GMOD(p) − LOCAL(p)`` turns equation (4) into
    the canonical system with seeds ``IMOD+`` and strips ``LOCAL``;
    the shards propagate only the narrow ``P`` slice (for flat
    programs: global bits) and ``GMOD(p) = IMOD+(p) | D(p)`` is
    assembled from the back-substituted successor unions in one
    bit-vector step per procedure.  ``plan`` may be a prebuilt
    :class:`ShardedSystem` over the call graph (with ``LOCAL`` strips)
    to amortise shard construction across effect kinds.
    """
    if counter is None:
        counter = OpCounter()
    num_nodes = call_graph.num_nodes
    system = _as_system(
        plan,
        num_nodes,
        call_graph.successors,
        universe.local_mask,
        carrier=narrow_carrier(call_graph.resolved, universe),
    )
    succ_or, stats = system.solve(list(imod_plus), runner, emit="succ_or")
    counter.bit_vector_steps += stats.steps + num_nodes
    gmod = [imod_plus[pid] | succ_or[pid] for pid in range(num_nodes)]
    return gmod, stats


# ---------------------------------------------------------------------------
# Pipeline entry point.
# ---------------------------------------------------------------------------


def analyze_side_effects_sharded(
    program: Union[str, ResolvedProgram],
    kinds: Iterable[EffectKind] = (EffectKind.MOD, EffectKind.USE),
    num_shards: int = 4,
    jobs: int = 1,
    strategy: str = "greedy",
    runner: Optional[ShardRunner] = None,
):
    """Run the complete analysis with the sharded solver.

    Drop-in for :func:`repro.core.pipeline.analyze_side_effects`: the
    same phases, the same :class:`SideEffectSummary`, bit-identical
    masks (the differential suite asserts it) — plus ``shard_info``
    partition/engine statistics and ``shard_*`` timing keys.

    ``jobs`` caps the shard process pool (1 = in-process, the
    sequential mode); a caller-provided ``runner`` overrides it and
    stays open for reuse.
    """
    from repro.core.aliases import compute_aliases, factor_aliases_into
    from repro.core.dmod import compute_dmod
    from repro.core.imod_plus import compute_imod_plus
    from repro.core.summary import EffectSolution, SideEffectSummary

    timings: Dict[str, float] = {}
    started = time.perf_counter()

    def _mark(phase: str, since: float) -> float:
        now = time.perf_counter()
        timings[phase] = timings.get(phase, 0.0) + (now - since)
        return now

    tick = started
    if isinstance(program, str):
        from repro.lang.lexer import tokenize_stream
        from repro.lang.parser import parse_token_stream
        from repro.lang.semantic import analyze as semantic_analyze

        stream = tokenize_stream(program)
        tick = _mark("lex", tick)
        ast = parse_token_stream(stream)
        tick = _mark("parse", tick)
        resolved = semantic_analyze(ast)
        tick = _mark("resolve", tick)
        timings["compile"] = timings["lex"] + timings["parse"] + timings["resolve"]
    else:
        resolved = program
        tick = _mark("compile", tick)

    counter = OpCounter()
    from repro.core.arena import get_arena

    # The shared lowering: graphs, local sets, and — crucially here —
    # the two cached condensations the partitioner would otherwise
    # recompute with its own Tarjan passes.
    arena = get_arena(resolved)
    universe = arena.universe
    call_graph = arena.call_graph
    binding_graph = arena.binding_graph
    local = arena.local
    tick = _mark("graphs", tick)
    aliases = compute_aliases(resolved, universe, counter)
    tick = _mark("aliases", tick)

    beta_plan = partition_graph(
        binding_graph.num_formals,
        binding_graph.successors,
        num_shards,
        strategy,
        condensation=arena.beta_condense_full(),
    )
    call_plan = partition_graph(
        call_graph.num_nodes,
        call_graph.successors,
        num_shards,
        strategy,
        condensation=arena.call_condense_full(),
    )
    # Build the two sharded systems once; MOD and USE reuse them with
    # different seed vectors.
    beta_system = ShardedSystem(
        binding_graph.num_formals, binding_graph.successors, None, beta_plan
    )
    call_system = ShardedSystem(
        call_graph.num_nodes,
        call_graph.successors,
        universe.local_mask,
        call_plan,
        carrier=narrow_carrier(resolved, universe),
    )
    tick = _mark("partition", tick)

    own_runner = runner is None
    active = runner if runner is not None else ShardRunner(jobs)
    rmod_stats = HierarchicalStats()
    gmod_stats = HierarchicalStats()
    try:
        solutions: Dict[EffectKind, EffectSolution] = {}
        for kind in kinds:
            rmod, stats = solve_rmod_sharded(
                binding_graph, local, kind, beta_system, active, counter
            )
            rmod_stats.accumulate(stats)
            tick = _mark("rmod", tick)
            imod_plus = compute_imod_plus(resolved, local, rmod, kind, counter)
            tick = _mark("imod_plus", tick)
            gmod, stats = solve_gmod_sharded(
                call_graph, imod_plus, universe, kind, call_system, active, counter
            )
            gmod_stats.accumulate(stats)
            tick = _mark("gmod", tick)
            dmod = compute_dmod(resolved, gmod, universe, kind, counter)
            mod = factor_aliases_into(dmod, aliases, resolved, counter)
            tick = _mark("dmod", tick)
            solutions[kind] = EffectSolution(
                kind=kind,
                rmod=rmod,
                imod_plus=imod_plus,
                gmod=gmod,
                dmod=dmod,
                mod=mod,
                gmod_method="sharded",
            )
    finally:
        if own_runner:
            active.close()

    for stats in (rmod_stats, gmod_stats):
        timings["shard_summarize"] = (
            timings.get("shard_summarize", 0.0) + stats.summarize_time
        )
        timings["shard_stitch"] = timings.get("shard_stitch", 0.0) + stats.stitch_time
        timings["shard_backsub"] = (
            timings.get("shard_backsub", 0.0) + stats.backsub_time
        )
    timings["total"] = time.perf_counter() - started

    shard_info = {
        "requested_shards": num_shards,
        "jobs": active.jobs,
        "strategy": strategy,
        "beta": beta_plan.to_dict(),
        "call": call_plan.to_dict(),
        "rmod": rmod_stats.to_dict(),
        "gmod": gmod_stats.to_dict(),
    }
    return SideEffectSummary(
        resolved=resolved,
        universe=universe,
        call_graph=call_graph,
        binding_graph=binding_graph,
        local=local,
        aliases=aliases,
        solutions=solutions,
        counter=counter,
        timings=timings,
        shard_info=shard_info,
    )
