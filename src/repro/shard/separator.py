"""Separator-tree (nested dissection) partitioning of the solver graphs.

The greedy and chunk strategies (:mod:`repro.shard.partition`) optimize
edge cut or contiguity, but neither exploits the *shape* real call
graphs have: small treedepth, hub-concentrated connectivity, and thin
multiresolution cut points.  This module dissects along those cuts,
working at SCC-component granularity throughout (never splitting an
SCC — the invariant every shard consumer relies on):

* **Disconnected regions** split for free: the undirected connected
  *islands* of a region have no edges between them in either
  direction, so any packing of islands into shards adds zero cut.
  Budget is allocated weight-proportionally — a dominant island takes
  a multi-shard share of its own and recurses, the small ones are
  LPT-packed into the remaining bins.
* **Connected regions** are cut along *layer bands*: components take
  longest-path levels over the region's DAG (every edge strictly
  increases the level — the BFS-layering family of balanced
  separators), the region splits at the level boundary with the
  fewest crossing boundary variables inside a weight-balance window,
  and an FM-style refinement pass then migrates components across the
  boundary (only moves that keep every edge early→late are feasible)
  to shrink the crossing set further — the thinness score.  Edges
  only ever cross from the early band to the late one, so *any*
  downstream grouping keeps the shard quotient acyclic.  Each band
  recurses: bands shatter into islands (hub connectivity becomes
  inter-band cut, not intra-band glue), islands pack or band again —
  that binary recursion *is* the separator tree.
* When a connected region has **no thin cut** (no refined boundary
  under :data:`MAX_SEPARATOR_FRACTION` in any balance window), the
  root falls back to the greedy plan; an interior region falls back
  to contiguous topological chunks, which preserve the global wave
  structure.

A final repair pass contracts any nontrivial quotient SCC (unreachable
by construction, kept as a guard), so ``quotient_acyclic`` is an
invariant of every non-fallback separator plan.

The emitted :class:`PartitionHierarchy` carries the tree (per-node
boundary-variable sets — exactly the carriers a stitch at that node
touches), the wave schedule (callee-first shard batches — what
:meth:`ShardedSystem._solve_waves` and the fleet coordinator execute),
and per-shard caller *scopes* (which shards may contain callers of a
shard's members — what the incremental engine uses to bound
invalidation-region scans, persisted in the dependency index).

Byte-identity is never at stake here: any component-respecting
assignment yields the same least solution; the partition only shapes
where the work happens.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.graphs.scc import condense, tarjan_scc

#: Crossing boundary variables above this fraction of the region's
#: weight means "no thin cut exists here".
MAX_SEPARATOR_FRACTION = 0.30
#: Weight-balance windows for the band boundary, tried in order.
BALANCE_WINDOWS = ((0.30, 0.70), (0.15, 0.85))
#: An island at least this multiple of the ideal shard weight gets a
#: dedicated multi-shard budget instead of sharing an LPT bin.
DOMINANT_ISLAND_FACTOR = 1.5
#: FM-style boundary refinement sweeps per cut.
REFINE_PASSES = 4
#: Recursion guard for pathological towers.
MAX_DEPTH = 12

#: Tree-node kinds (persisted as small ints in the dependency index).
KIND_REGION = 0  # Connected region split into two layer bands.
KIND_GROUP = 1  # Disconnected region split into island groups.
KIND_LEAF = 3  # Owns exactly one shard.

KIND_NAMES = {
    KIND_REGION: "region",
    KIND_GROUP: "group",
    KIND_LEAF: "leaf",
}


@dataclass
class HierarchyNode:
    """One node of the separator tree."""

    node_id: int
    parent: int  # -1 for the root.
    kind: int
    #: Shard this node owns (-1 for interior nodes, which own none).
    shard_id: int
    depth: int = 0
    weight: int = 0
    children: List[int] = field(default_factory=list)
    #: Graph nodes exported across this node's separator: endpoints of
    #: cross-shard edges whose two shards meet at this node.  A stitch
    #: for this node touches exactly these carriers.  Empty on leaves
    #: and usually on :data:`KIND_GROUP` nodes (islands share no
    #: edges).
    boundary: List[int] = field(default_factory=list)


@dataclass
class PartitionHierarchy:
    """The separator tree plus the schedules derived from it."""

    nodes: List[HierarchyNode]
    #: shard id → tree node owning it.
    node_of_shard: List[int]
    #: Callee-first shard batches: every shard's imports are owned by
    #: strictly earlier waves.  Empty when the quotient is cyclic
    #: (fallback plans only).
    waves: List[List[int]]
    #: shard id → sorted shard ids whose members may call into it
    #: (quotient predecessors + itself).  Sound for any edit that keeps
    #: a procedure's call sites unchanged — the incremental engine's
    #: region scans are bounded by these.
    scopes: List[List[int]]
    #: The plan is a relabeled greedy plan (no thin cut existed).
    fallback: bool = False
    #: Shards merged away by the acyclicity repair pass.
    merged_shards: int = 0
    #: Root cut's crossing boundary variables / root region weight
    #: (0 when the root was disconnected or the plan is a fallback).
    separator_score: float = 0.0

    @property
    def max_wave_width(self) -> int:
        return max((len(wave) for wave in self.waves), default=0)

    def to_dict(self) -> Dict:
        return {
            "fallback": self.fallback,
            "tree_nodes": len(self.nodes),
            "tree_depth": max((n.depth for n in self.nodes), default=0),
            "merged_shards": self.merged_shards,
            "separator_score": self.separator_score,
            "num_waves": len(self.waves),
            "max_wave_width": self.max_wave_width,
            "boundary_total": sum(len(n.boundary) for n in self.nodes),
        }


def _comp_graph(
    cond, successors: Sequence[Sequence[int]]
) -> Tuple[List[List[int]], List[List[int]]]:
    """Deduplicated component-level successor and predecessor lists."""
    num_comps = cond.num_components
    comp_of = cond.component_of
    succ_sets: List[Set[int]] = [set() for _ in range(num_comps)]
    for comp_index, members in enumerate(cond.components):
        bucket = succ_sets[comp_index]
        for node in members:
            for q in successors[node]:
                target = comp_of[q]
                if target != comp_index:
                    bucket.add(target)
    comp_succ = [sorted(bucket) for bucket in succ_sets]
    pred_sets: List[Set[int]] = [set() for _ in range(num_comps)]
    for comp_index, targets in enumerate(comp_succ):
        for target in targets:
            pred_sets[target].add(comp_index)
    return comp_succ, [sorted(bucket) for bucket in pred_sets]


def build_separator_plan(
    num_nodes: int,
    successors: Sequence[Sequence[int]],
    num_shards: int,
    condensation=None,
):
    """Build a ``strategy="separator"`` :class:`ShardPlan`.

    Returns a plan whose ``hierarchy`` field is a
    :class:`PartitionHierarchy`; when no thin cut exists at the root
    the plan's *assignment* is the greedy one (``hierarchy.fallback``
    is set) so separator never does worse than greedy.
    """
    from repro.shard import partition as _partition

    cond = (
        condensation
        if condensation is not None
        else condense(num_nodes, successors)
    )
    num_comps = cond.num_components
    comp_w = [len(members) for members in cond.components]
    comp_succ, comp_pred = _comp_graph(cond, successors)
    effective = max(1, min(num_shards, num_comps))

    tree_nodes: List[HierarchyNode] = []
    node_of_shard: List[int] = []
    shard_comps: List[List[int]] = []  # shard id → component ids.
    root_score: List[float] = []  # First connected cut's thinness.

    # Flat per-component scratch arrays, generation-stamped so the
    # recursion never rebuilds sets: ``region_tag[c] == generation``
    # means "c is in the region currently being processed".
    region_tag = [0] * num_comps
    generation = [0]
    seen_arr = [0] * num_comps
    level_arr = [0] * num_comps
    fp_stamp = [0] * num_comps
    fp_val = [0] * num_comps
    side_arr = [0] * num_comps  # 1 = early band, 2 = late band.
    epc_arr = [0] * num_comps  # Early-side in-region pred count.
    topo_pos = [0] * num_comps  # Global topological rank per comp.
    for pos, c in enumerate(cond.topological_order()):
        topo_pos[c] = pos

    def mark_region(region: List[int]) -> int:
        generation[0] += 1
        g = generation[0]
        for c in region:
            region_tag[c] = g
        return g

    def new_node(parent: int, kind: int, comps: List[int]) -> int:
        node_id = len(tree_nodes)
        depth = 0 if parent < 0 else tree_nodes[parent].depth + 1
        weight = sum(comp_w[c] for c in comps)
        if kind == KIND_LEAF:
            shard_id = len(shard_comps)
            shard_comps.append(comps)
            node_of_shard.append(node_id)
        else:
            shard_id = -1
        tree_nodes.append(
            HierarchyNode(
                node_id=node_id,
                parent=parent,
                kind=kind,
                shard_id=shard_id,
                depth=depth,
                weight=weight,
            )
        )
        if parent >= 0:
            tree_nodes[parent].children.append(node_id)
        return node_id

    def islands_of(region: List[int]) -> List[List[int]]:
        """Undirected connected components of the region (flood fill
        over successor + predecessor adjacency, scratch-array based)."""
        g = mark_region(region)
        islands: List[List[int]] = []
        for start in region:  # Region order keeps this deterministic.
            if seen_arr[start] == g:
                continue
            seen_arr[start] = g
            stack = [start]
            members = [start]
            while stack:
                c = stack.pop()
                for d in comp_succ[c]:
                    if region_tag[d] == g and seen_arr[d] != g:
                        seen_arr[d] = g
                        stack.append(d)
                        members.append(d)
                for d in comp_pred[c]:
                    if region_tag[d] == g and seen_arr[d] != g:
                        seen_arr[d] = g
                        stack.append(d)
                        members.append(d)
            members.sort()
            islands.append(members)
        return islands

    def weight_of(comps: List[int]) -> int:
        return sum(comp_w[c] for c in comps)

    def lpt_pack(islands: List[List[int]], bins: int) -> List[List[List[int]]]:
        """Pack islands into ``bins`` groups of islands, heaviest first."""
        order = sorted(
            range(len(islands)),
            key=lambda i: (-weight_of(islands[i]), i),
        )
        packs: List[List[List[int]]] = [[] for _ in range(bins)]
        weights = [0] * bins
        for index in order:
            best = min(range(bins), key=lambda b: (weights[b], b))
            packs[best].append(islands[index])
            weights[best] += weight_of(islands[index])
        return [pack for pack in packs if pack]

    def refine_cut(
        region: List[int], g: int, total: int, low: float, high: float
    ) -> int:
        """FM-style boundary refinement.

        Operates on ``side_arr`` (1 = early, 2 = late, valid where
        ``region_tag == g``): migrates components across the band
        boundary when that shrinks the crossing boundary-variable set,
        keeping the early-band weight fraction inside ``[low, high]``.
        A component may move early→late only when all its in-region
        successors are late, and late→early only when all its
        in-region preds are early — so every edge stays early→late and
        the quotient stays acyclic.  Returns the final crossing count.
        """
        early_w = 0
        for c in region:
            if side_arr[c] == 1:
                early_w += comp_w[c]
            else:
                # epc[c] for late c: in-region preds currently early.
                count = 0
                for p in comp_pred[c]:
                    if region_tag[p] == g and side_arr[p] == 1:
                        count += 1
                epc_arr[c] = count
        for _ in range(REFINE_PASSES):
            moved = False
            for c in region:
                w = comp_w[c]
                if side_arr[c] == 1:
                    blocked = False
                    for d in comp_succ[c]:
                        if region_tag[d] == g and side_arr[d] == 1:
                            blocked = True
                            break
                    if blocked or (early_w - w) / total < low:
                        continue
                    gain = 0
                    for p in comp_pred[c]:
                        if region_tag[p] == g and side_arr[p] == 1:
                            gain -= 1  # c becomes a crossing export.
                            break
                    for d in comp_succ[c]:
                        if region_tag[d] == g and epc_arr[d] == 1:
                            gain += 1  # c was d's only early pred.
                    if gain <= 0:
                        continue
                    side_arr[c] = 2
                    early_w -= w
                    for d in comp_succ[c]:
                        if region_tag[d] == g:
                            epc_arr[d] -= 1
                    count = 0
                    for p in comp_pred[c]:
                        if region_tag[p] == g and side_arr[p] == 1:
                            count += 1
                    epc_arr[c] = count
                    moved = True
                else:
                    blocked = False
                    for p in comp_pred[c]:
                        if region_tag[p] == g and side_arr[p] == 2:
                            blocked = True
                            break
                    if blocked or (early_w + w) / total > high:
                        continue
                    gain = 1 if epc_arr[c] > 0 else 0
                    for d in comp_succ[c]:
                        if (
                            region_tag[d] == g
                            and side_arr[d] == 2
                            and epc_arr[d] == 0
                        ):
                            gain -= 1  # d becomes a crossing export.
                    if gain <= 0:
                        continue
                    side_arr[c] = 1
                    early_w += w
                    for d in comp_succ[c]:
                        if region_tag[d] == g and side_arr[d] == 2:
                            epc_arr[d] += 1
                    moved = True
            if not moved:
                break
        crossing = 0
        for d in region:
            if side_arr[d] == 2 and epc_arr[d] > 0:
                crossing += 1
        return crossing

    def band_cut(
        region: List[int],
    ) -> Optional[Tuple[List[int], List[int], float]]:
        """Thinnest balanced layer cut of a connected region.

        Levels are longest-path layers over the region's component DAG
        (every edge strictly increases the level).  The boundary after
        level ``l`` is scored by its crossing boundary *variables* —
        the distinct components exported across it; the cheapest
        boundary inside a weight-balance window is then FM-refined.
        Returns ``(early_band, late_band, score)`` or None when no
        refined boundary is thin enough.
        """
        g = mark_region(region)
        order = sorted(region, key=topo_pos.__getitem__)
        for c in region:
            level_arr[c] = 0
        max_level = 0
        for c in order:
            base = level_arr[c] + 1
            for d in comp_succ[c]:
                if region_tag[d] == g and level_arr[d] < base:
                    level_arr[d] = base
                    if base > max_level:
                        max_level = base
        if max_level == 0:
            return None
        # Crossing boundary variables per boundary, by difference
        # array: component d is exported across every boundary from
        # its earliest in-region predecessor's level up to
        # ``level_arr[d] - 1``.
        crossing = [0] * (max_level + 1)
        for c in order:
            lc = level_arr[c]
            for d in comp_succ[c]:
                if region_tag[d] != g:
                    continue
                if fp_stamp[d] != g or lc < fp_val[d]:
                    fp_stamp[d] = g
                    fp_val[d] = lc
        for d in region:
            if fp_stamp[d] != g:
                continue
            start, end = fp_val[d], level_arr[d]
            if start < end:  # Exported across boundaries start..end-1.
                crossing[start] += 1
                crossing[end] -= 1
        for l in range(1, max_level + 1):
            crossing[l] += crossing[l - 1]
        level_weight = [0] * (max_level + 1)
        for c in region:
            level_weight[level_arr[c]] += comp_w[c]
        total = sum(level_weight)
        prefix = [0] * (max_level + 1)
        acc = 0
        for l in range(max_level + 1):
            acc += level_weight[l]
            prefix[l] = acc
        cap = max(1, int(total * MAX_SEPARATOR_FRACTION))
        for low, high in BALANCE_WINDOWS:
            best_l = -1
            best_x = None
            for l in range(max_level):  # Boundary after level l.
                frac = prefix[l] / total
                if frac < low or frac > high:
                    continue
                if best_x is None or crossing[l] < best_x:
                    best_x = crossing[l]
                    best_l = l
            if best_l < 0:
                continue
            for c in region:
                side_arr[c] = 1 if level_arr[c] <= best_l else 2
            refined = refine_cut(region, g, total, low, high)
            if refined > cap:
                continue
            early = [c for c in region if side_arr[c] == 1]
            late = [c for c in region if side_arr[c] == 2]
            return early, late, refined / total
        return None

    def chunk_leaves(region: List[int], budget: int, parent: int) -> None:
        """Topologically contiguous leaf chunks — the in-recursion
        fallback when a region has no thin cut (edges between chunks
        only run forward, so the global wave structure survives)."""
        ordered = sorted(region, key=topo_pos.__getitem__)
        total = weight_of(ordered)
        bins = max(1, min(budget, len(ordered)))
        chunk: List[int] = []
        placed_total = 0
        shard = 0
        for index, c in enumerate(ordered):
            remaining = len(ordered) - index
            if chunk and shard < bins - 1 and (
                placed_total >= (shard + 1) * total / bins
                or remaining == bins - shard
            ):
                new_node(parent, KIND_LEAF, sorted(chunk))
                chunk = []
                shard += 1
            chunk.append(c)
            placed_total += comp_w[c]
        if chunk:
            new_node(parent, KIND_LEAF, sorted(chunk))

    def leaf_or_recurse(
        members: List[int], budget: int, parent: int, depth: int
    ) -> None:
        if budget <= 1 or len(members) <= 1:
            new_node(parent, KIND_LEAF, members)
        else:
            dissect(members, budget, parent, depth)

    def dissect(region: List[int], budget: int, parent: int, depth: int) -> None:
        if budget <= 1 or len(region) <= 1 or depth >= MAX_DEPTH:
            new_node(parent, KIND_LEAF, sorted(region))
            return
        islands = islands_of(region)
        if len(islands) > 1:
            total = weight_of(region)
            ideal = total / budget
            by_weight = sorted(
                range(len(islands)),
                key=lambda i: (-weight_of(islands[i]), i),
            )
            # Dominant islands take a dedicated, weight-proportional
            # multi-shard budget; the rest LPT-pack into what's left.
            dedicated = [
                i
                for i in by_weight
                if weight_of(islands[i]) >= DOMINANT_ISLAND_FACTOR * ideal
            ]
            taken = set(dedicated)
            small = [i for i in by_weight if i not in taken]
            avail = budget - (1 if small else 0)
            ded_budget: List[int] = []
            for rank, i in enumerate(dedicated):
                rest = len(dedicated) - rank - 1
                share = int(weight_of(islands[i]) / ideal + 0.5)
                b = max(1, min(share, avail - rest))
                ded_budget.append(b)
                avail -= b
            small_bins = budget - sum(ded_budget)
            packs: List[List[List[int]]] = []
            pack_budget: List[int] = []
            if small:
                packs = lpt_pack(
                    [islands[i] for i in small], min(len(small), small_bins)
                )
                pack_budget = [1] * len(packs)
                spare = small_bins - len(packs)
                heavy = sorted(
                    range(len(packs)),
                    key=lambda i: (
                        -sum(weight_of(isle) for isle in packs[i]),
                        i,
                    ),
                )
                while spare > 0:
                    for i in heavy:
                        if spare <= 0:
                            break
                        pack_budget[i] += 1
                        spare -= 1
            elif ded_budget:
                ded_budget[0] += budget - sum(ded_budget)
            group_node = new_node(parent, KIND_GROUP, sorted(region))
            for i, b in zip(dedicated, ded_budget):
                leaf_or_recurse(sorted(islands[i]), b, group_node, depth + 1)
            for pack, b in zip(packs, pack_budget):
                members = sorted(c for isle in pack for c in isle)
                leaf_or_recurse(members, b, group_node, depth + 1)
            return
        cut = band_cut(region)
        if cut is None:
            chunk_leaves(region, budget, parent)
            return
        early, late, score = cut
        if not root_score:
            root_score.append(score)
        region_node = new_node(parent, KIND_REGION, sorted(region))
        early_w, late_w = weight_of(early), weight_of(late)
        early_budget = max(
            1,
            min(
                budget - 1,
                int(budget * early_w / max(early_w + late_w, 1) + 0.5),
            ),
        )
        dissect(early, early_budget, region_node, depth + 1)
        dissect(late, budget - early_budget, region_node, depth + 1)

    # ------------------------------------------------------------------
    # Root dispatch.
    # ------------------------------------------------------------------
    all_comps = list(range(num_comps))
    if effective == 1:
        new_node(-1, KIND_LEAF, all_comps)
    else:
        root_islands = islands_of(all_comps)
        if len(root_islands) == 1 and band_cut(all_comps) is None:
            # No thin cut at the root: greedy assignment, separator
            # label, fallback hierarchy.
            plan = _partition.partition_graph(
                num_nodes, successors, num_shards, "greedy", condensation=cond
            )
            plan.strategy = "separator"
            plan.hierarchy = _fallback_hierarchy(plan)
            return plan
        dissect(all_comps, effective, -1, 0)

    shard_of = [-1] * num_nodes
    for shard_id, comps in enumerate(shard_comps):
        for c in comps:
            for node in cond.components[c]:
                shard_of[node] = shard_id

    plan = _partition._finish_plan(
        num_shards,
        "separator",
        num_nodes,
        successors,
        shard_of,
        len(shard_comps),
        num_comps,
        max(comp_w) if comp_w else 0,
        cond,
    )

    # Repair: contract any nontrivial quotient SCC.  Unreachable by
    # construction (cross-shard edges follow band order or island
    # disjointness), kept as a guard — the contracted quotient is the
    # condensation of the old one, hence acyclic.
    merged = 0
    _qcomp_of, qcomps = tarjan_scc(plan.num_shards, plan.quotient)
    if any(len(comp) > 1 for comp in qcomps):
        merged = plan.num_shards - len(qcomps)
        remap = [0] * plan.num_shards
        for new_id, comp in enumerate(qcomps):
            for old_id in comp:
                remap[old_id] = new_id
        shard_of = [remap[s] for s in shard_of]
        plan = _partition._finish_plan(
            num_shards,
            "separator",
            num_nodes,
            successors,
            shard_of,
            len(qcomps),
            num_comps,
            max(comp_w) if comp_w else 0,
            cond,
        )
        new_node_of_shard = [-1] * len(qcomps)
        for node in tree_nodes:
            if node.shard_id >= 0:
                node.shard_id = remap[node.shard_id]
                if new_node_of_shard[node.shard_id] < 0:
                    new_node_of_shard[node.shard_id] = node.node_id
        node_of_shard = new_node_of_shard

    hierarchy = PartitionHierarchy(
        nodes=tree_nodes,
        node_of_shard=node_of_shard,
        waves=_waves_of(plan),
        scopes=_scopes_of(plan),
        merged_shards=merged,
        separator_score=root_score[0] if root_score else 0.0,
    )
    _attach_boundaries(hierarchy, plan, num_nodes, successors)
    plan.hierarchy = hierarchy
    return plan


def _waves_of(plan) -> List[List[int]]:
    """Callee-first shard batches of an acyclic quotient ([] if cyclic)."""
    num_shards = plan.num_shards
    _comp_of, comps = tarjan_scc(num_shards, plan.quotient)
    if any(len(comp) > 1 for comp in comps):
        return []
    depth = [0] * num_shards
    for comp in comps:  # Reverse topological: sinks first.
        shard_id = comp[0]
        best = 0
        for succ in plan.quotient[shard_id]:
            if depth[succ] >= best:
                best = depth[succ] + 1
        depth[shard_id] = best
    waves: List[List[int]] = [[] for _ in range(max(depth) + 1)]
    for shard_id, d in enumerate(depth):
        waves[d].append(shard_id)
    return waves


def _scopes_of(plan) -> List[List[int]]:
    """Per shard: sorted shards whose members may call into it."""
    preds: List[Set[int]] = [set() for _ in range(plan.num_shards)]
    for shard_id, targets in enumerate(plan.quotient):
        for target in targets:
            preds[target].add(shard_id)
    return [
        sorted(preds[shard_id] | {shard_id})
        for shard_id in range(plan.num_shards)
    ]


def _attach_boundaries(
    hierarchy: PartitionHierarchy,
    plan,
    num_nodes: int,
    successors: Sequence[Sequence[int]],
) -> None:
    """Assign every exported node to the tree node whose separator it
    crosses (the LCA of the two shards' tree nodes)."""
    nodes = hierarchy.nodes
    node_of_shard = hierarchy.node_of_shard
    if not nodes:
        return

    def lca(a: int, b: int) -> int:
        while a != b:
            if nodes[a].depth >= nodes[b].depth:
                a = nodes[a].parent
            else:
                b = nodes[b].parent
            if a < 0 or b < 0:
                return 0
        return a

    lca_of_pair: Dict[Tuple[int, int], int] = {}
    buckets: Dict[int, Set[int]] = {}
    shard_of = plan.shard_of
    for node in range(num_nodes):
        s = shard_of[node]
        for q in successors[node]:
            t = shard_of[q]
            if t == s:
                continue
            pair = (s, t)
            owner = lca_of_pair.get(pair)
            if owner is None:
                owner = lca(node_of_shard[s], node_of_shard[t])
                lca_of_pair[pair] = owner
            buckets.setdefault(owner, set()).add(q)
    for owner, exported in buckets.items():
        nodes[owner].boundary = sorted(exported)


def _fallback_hierarchy(plan) -> PartitionHierarchy:
    """A single-level hierarchy wrapping a greedy fallback assignment."""
    root = HierarchyNode(
        node_id=0,
        parent=-1,
        kind=KIND_GROUP,
        shard_id=-1,
        weight=plan.num_nodes,
    )
    leaves = []
    node_of_shard = []
    for shard_id in range(plan.num_shards):
        leaf = HierarchyNode(
            node_id=shard_id + 1,
            parent=0,
            kind=KIND_LEAF,
            shard_id=shard_id,
            depth=1,
            weight=len(plan.shards[shard_id]),
        )
        root.children.append(leaf.node_id)
        leaves.append(leaf)
        node_of_shard.append(leaf.node_id)
    return PartitionHierarchy(
        nodes=[root] + leaves,
        node_of_shard=node_of_shard,
        waves=_waves_of(plan),
        scopes=_scopes_of(plan),
        fallback=True,
    )
