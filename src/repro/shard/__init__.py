"""Sharded whole-program analysis: partition, stitch, back-substitute.

Where :mod:`repro.core` solves the canonical system
``P(n) = s(n) | (OR over n->q of P(q)) & m(n)`` in one pass over the
whole graph, this package splits that pass across an SCC-respecting
partition and recombines the pieces — **bit-identically**: the sharded
solver's :class:`~repro.core.summary.AnalysisSummary` matches the
monolithic pipeline byte for byte in persist-v2 form, for every shard
count and strategy (``make shard-differential`` is the standing
oracle).

* :mod:`repro.shard.partition` — Tarjan condensation plus ``greedy``
  (balanced edge-cut) or ``chunk`` (contiguous reverse-topological)
  shard assignment; SCCs are never split, so the cross-shard quotient
  stays acyclic and each shard keeps the paper's one-pass property;
* :mod:`repro.shard.boundary` — per-shard transfer summaries
  (condense the interior onto the boundary) and back-substitution,
  picklable for process pools;
* :mod:`repro.shard.solve` — the hierarchical driver: summarize →
  stitch → backsub, the sequential *direct* path for acyclic
  quotients, the narrow ``GMOD`` carrier, and the
  :func:`analyze_side_effects_sharded` entry point behind
  ``ck-analyze shard``;
* :mod:`repro.shard.runner` — the :class:`ShardRunner` process-pool
  wrapper (``jobs=1`` stays in-process).
"""

from repro.shard.partition import STRATEGIES, ShardPlan, partition_graph
from repro.shard.boundary import BacksubResult, ShardProblem, ShardSummary
from repro.shard.runner import ShardRunner
from repro.shard.solve import (
    HierarchicalStats,
    ShardedSystem,
    analyze_side_effects_sharded,
    narrow_carrier,
    solve_gmod_sharded,
    solve_hierarchical,
    solve_rmod_sharded,
)

__all__ = [
    "STRATEGIES",
    "ShardPlan",
    "partition_graph",
    "BacksubResult",
    "ShardProblem",
    "ShardSummary",
    "ShardRunner",
    "HierarchicalStats",
    "ShardedSystem",
    "analyze_side_effects_sharded",
    "narrow_carrier",
    "solve_gmod_sharded",
    "solve_hierarchical",
    "solve_rmod_sharded",
]
