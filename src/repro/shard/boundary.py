"""Per-shard transfer summaries and shard-local solving.

The hierarchical solver (:mod:`repro.shard.solve`) reduces both of the
paper's propagation problems to one canonical form.  For every node
``n`` of a multi-graph, find the least solution of::

    P(n) = s(n)  |  ( OR_{n -> q} P(q) )  &  m(n)

where ``s(n)`` is a pre-stripped seed (``s(n) & ~m(n) == 0``) and
``m(n)`` is a *receive mask* applied to everything ``n`` pulls from
its successors.  ``RMOD`` on β is this system with 0/1 seeds and
``m(n) = -1`` (no mask); ``GMOD`` is this system on the call graph
with ``m(n) = ~LOCAL(n)`` — the equation (4) filter — after the
substitution ``P(p) = GMOD(p) - LOCAL(p)``, ``GMOD(p) = IMOD+(p) ∪
OR_{p->q} P(q)``.

A *shard problem* is the restriction of the system to one shard: the
intra-shard edges stay edges, every cross-shard edge becomes a
reference to an **import** (a node owned by another shard), and the
shard's **exports** are the nodes other shards import.  Everything in
a problem is plain ints/lists, so problems pickle cheaply into
:class:`concurrent.futures.ProcessPoolExecutor` workers.

Two worker bodies run per shard:

* :func:`summarize_shard` — solve the shard symbolically, treating
  imports as unknowns, and return for every export a transfer summary
  ``(const, deps)``: the bits it contributes unconditionally plus the
  imports whose value flows into it.  Two dependency engines:

  - **maskless** (``problem.masked`` False): deps are a bitmask over
    the shard's import list.  Chosen by the driver only when a static
    check proves no import bit can be stripped by any receive mask in
    the shard, so dependencies reduce to pure reachability.  This is
    the hot path; it always applies to ``RMOD`` (no masks) and to
    ``GMOD`` of flat programs (imported bits are global, masks strip
    locals).
  - **masked** (``problem.masked`` True): deps are ``{import ->
    mask}`` dicts with masks composed along paths.  Since the transfer
    functions ``x & M`` distribute over ``|``, the abstract least
    fixpoint *is* the exact summary function — this engine is exact
    for arbitrary nesting and is used whenever the static check fails.

* :func:`backsub_shard` — once the stitch (in the driver) has final
  values for every import, re-solve the shard concretely.  With exact
  boundary values the shard-local least solution coincides with the
  global least solution restricted to the shard, so back-substitution
  is always exact regardless of engine.

Within one shard the graph may still contain cycles (whole SCCs are
assigned to shards).  Components whose traffic is untouched by the
receive masks collapse to a single union per component — the Figure 1
/ Figure 2 one-pass property, preserved per shard because SCCs never
span shards; components where masks bite are iterated to a fixpoint
(only reachable in the masked engine's nested-program cases).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.bitvec import iter_bits
from repro.graphs.scc import tarjan_scc


@dataclass
class ShardProblem:
    """The canonical system restricted to one shard (picklable)."""

    shard_id: int
    #: Global node ids, ascending; local index = list position.
    nodes: List[int]
    #: Intra-shard adjacency in local indices (parallel edges kept).
    succ: List[List[int]]
    #: Per local node: indices into ``imports`` (one per cross edge).
    cross: List[List[int]]
    #: Imported global node ids, ascending, deduplicated.
    imports: List[int]
    #: Pre-stripped seeds ``s(n)``, one per local node.
    seeds: List[int]
    #: Positive strip masks (``m(n) = ~strips[n]``); None = no masks.
    strips: Optional[List[int]]
    #: Local indices whose transfer summaries other shards need.
    exports: List[int]
    #: Dependency engine: False = maskless bitmask deps (static check
    #: passed), True = per-import mask dicts (always exact).
    masked: bool = False
    #: Backsubstitution output: "value" → P(n); "succ_or" → the raw
    #: successor union D(n) = OR_{n->q} P(q) (what equation (4) adds
    #: to IMOD+).
    emit: str = "value"
    #: Shard-local SCC structure, precomputed by the driver so the
    #: summarize and back-substitute phases (and both effect kinds)
    #: share one Tarjan pass.  None → workers compute it themselves.
    comp_of: Optional[List[int]] = None
    comps: Optional[List[List[int]]] = None
    #: Per-component strip union (seed-independent), precomputed by the
    #: driver so the one-pass check costs one lookup instead of a
    #: full-width OR per member on every solve.  Requires ``comps``.
    comp_bite: Optional[List[int]] = None


@dataclass
class ShardSummary:
    """Transfer summaries for one shard's exports."""

    shard_id: int
    #: Export local index → unconditional contribution.
    const: Dict[int, int]
    #: Export local index → import deps: bitmask over the problem's
    #: import list (maskless) or ``{import index: mask}`` (masked).
    deps: Dict[int, object]
    steps: int = 0
    elapsed: float = 0.0


@dataclass
class BacksubResult:
    """Concrete per-node results for one shard."""

    shard_id: int
    #: Per local node: P(n) or D(n), per ``problem.emit``.
    values: List[int]
    steps: int = 0
    elapsed: float = 0.0


def _receive_mask(strips: Optional[List[int]], node: int) -> int:
    return -1 if strips is None else ~strips[node]


def _shard_components(
    problem: ShardProblem,
) -> Tuple[List[int], List[List[int]]]:
    if problem.comp_of is not None and problem.comps is not None:
        return problem.comp_of, problem.comps
    return tarjan_scc(len(problem.nodes), problem.succ)


def _component_bite(
    problem: ShardProblem, comp_index: int, members: List[int]
) -> int:
    """Strip union over one component's members (0 when no strips)."""
    if problem.strips is None:
        return 0
    if problem.comp_bite is not None:
        return problem.comp_bite[comp_index]
    bite = 0
    for node in members:
        bite |= problem.strips[node]
    return bite


def _solve_concrete(
    problem: ShardProblem, import_values: List[int]
) -> Tuple[List[int], int]:
    """Least solution of the shard's system with imports fixed.

    Returns ``(P, steps)`` where ``P[n]`` is the propagating value of
    local node ``n``.
    """
    n = len(problem.nodes)
    succ = problem.succ
    cross = problem.cross
    seeds = problem.seeds
    strips = problem.strips
    value = [0] * n
    steps = 0
    comp_of, comps = _shard_components(problem)
    for comp_index, members in enumerate(comps):
        # External contribution per member: the seed, finished
        # successors in other components, and imports.
        ext: List[int] = []
        union = 0
        bite = _component_bite(problem, comp_index, members)
        for node in members:
            acc = seeds[node]
            for q in succ[node]:
                if comp_of[q] != comp_index:
                    acc |= value[q]
            for i in cross[node]:
                acc |= import_values[i]
            steps += 1 + len(succ[node]) + len(cross[node])
            ext.append(acc)
            union |= acc
        if union & bite == 0:
            # Masks cannot strip anything in flight: within a strongly
            # connected component the solution is the plain union
            # (Figure 1's representer property), one pass.
            for node in members:
                value[node] = union
            steps += len(members)
            continue
        # Masks bite: round-robin iteration to the fixpoint.  Seed each
        # member with its masked external contribution first.
        for node, acc in zip(members, ext):
            value[node] = seeds[node] | (acc & _receive_mask(strips, node))
        changed = True
        while changed:
            changed = False
            for node in members:
                acc = 0
                for q in succ[node]:
                    if comp_of[q] == comp_index:
                        acc |= value[q]
                steps += len(succ[node])
                new = value[node] | (acc & _receive_mask(strips, node))
                if new != value[node]:
                    value[node] = new
                    changed = True
    return value, steps


def summarize_shard(problem: ShardProblem) -> ShardSummary:
    """Phase-1 worker: symbolic shard solve → export summaries."""
    started = time.perf_counter()
    if problem.masked:
        const, deps, steps = _summarize_masked(problem)
    else:
        const, deps, steps = _summarize_maskless(problem)
    return ShardSummary(
        shard_id=problem.shard_id,
        const={e: const[e] for e in problem.exports},
        deps={e: deps[e] for e in problem.exports},
        steps=steps,
        elapsed=time.perf_counter() - started,
    )


def _summarize_maskless(
    problem: ShardProblem,
) -> Tuple[List[int], List[int], int]:
    """Symbolic solve with bitmask deps (no per-dep masks).

    Valid only under the driver's static no-strip guarantee for import
    bits; const parts still honour the receive masks.
    """
    n = len(problem.nodes)
    succ = problem.succ
    cross = problem.cross
    seeds = problem.seeds
    strips = problem.strips
    const = [0] * n
    deps = [0] * n
    steps = 0
    comp_of, comps = _shard_components(problem)
    for comp_index, members in enumerate(comps):
        ext_const: List[int] = []
        union = 0
        bite = _component_bite(problem, comp_index, members)
        dep_union = 0
        for node in members:
            acc = seeds[node]
            for q in succ[node]:
                if comp_of[q] != comp_index:
                    acc |= const[q]
                    dep_union |= deps[q]
            for i in cross[node]:
                dep_union |= 1 << i
            steps += 1 + len(succ[node]) + len(cross[node])
            ext_const.append(acc)
            union |= acc
        # Deps are pure reachability: uniform across the component.
        for node in members:
            deps[node] = dep_union
        if union & bite == 0:
            for node in members:
                const[node] = union
            steps += len(members)
            continue
        for node, acc in zip(members, ext_const):
            const[node] = seeds[node] | (acc & _receive_mask(strips, node))
        changed = True
        while changed:
            changed = False
            for node in members:
                acc = 0
                for q in succ[node]:
                    if comp_of[q] == comp_index:
                        acc |= const[q]
                steps += len(succ[node])
                new = const[node] | (acc & _receive_mask(strips, node))
                if new != const[node]:
                    const[node] = new
                    changed = True
    return const, deps, steps


def _summarize_masked(
    problem: ShardProblem,
) -> Tuple[List[int], List[Dict[int, int]], int]:
    """Symbolic solve with per-import mask dicts (always exact).

    The abstract value of a node is ``(const, {import: mask})``
    meaning ``P(n) = const | OR_i (V(import_i) & mask_i)``.  Transfers
    ``x & m(n)`` distribute over ``|``, so composing masks along edges
    and taking unions at merges computes the exact summary function.
    Runs as plain round-robin iteration per component — this engine
    only serves shards where the static check failed (nested-program
    shapes), which are small.
    """
    n = len(problem.nodes)
    succ = problem.succ
    cross = problem.cross
    seeds = problem.seeds
    strips = problem.strips
    const = [0] * n
    deps: List[Dict[int, int]] = [dict() for _ in range(n)]
    steps = 0
    for node in range(n):
        const[node] = seeds[node]
        mask = _receive_mask(strips, node)
        for i in cross[node]:
            prev = deps[node].get(i, 0)
            deps[node][i] = prev | mask
            steps += 1
    changed = True
    while changed:
        changed = False
        for node in range(n):
            mask = _receive_mask(strips, node)
            acc_const = const[node]
            bucket = deps[node]
            for q in succ[node]:
                acc_const |= const[q] & mask
                for i, dep_mask in deps[q].items():
                    combined = dep_mask & mask
                    if combined == 0:
                        continue
                    prev = bucket.get(i, 0)
                    if combined | prev != prev:
                        bucket[i] = prev | combined
                        changed = True
                steps += 1 + len(deps[q])
            if acc_const != const[node]:
                const[node] = acc_const
                changed = True
    return const, deps, steps


def stitch_tree(
    problems: List["ShardProblem"],
    summaries: List["ShardSummary"],
    hierarchy,
) -> Tuple[Dict[int, int], int]:
    """Boundary solve along a separator tree's wave schedule.

    The flat stitch (:func:`repro.shard.solve._stitch`) builds one
    global dependency system over *every* boundary node and runs Tarjan
    over it.  A separator plan already knows more: its
    :class:`~repro.shard.separator.PartitionHierarchy` carries a
    callee-first wave schedule over an acyclic shard quotient, and each
    tree node's ``boundary`` set names exactly the carriers its
    separator introduces.  So the stitch decomposes into one small step
    per shard, bottom-up along the tree: when a shard's wave comes up,
    every import it consumes was exported by a deeper wave and is
    final, so its own exports resolve in a single masked-OR sweep —
    each step touches only that shard's summaries and its separator's
    carriers, never a global system.

    Returns the same ``node id → value`` map as the flat stitch (both
    compute the unique least solution of the same acyclic boundary
    system), plus a step tally.
    """
    value_at: Dict[int, int] = {}
    steps = 0
    for wave in hierarchy.waves:
        for shard_id in wave:
            problem = problems[shard_id]
            summary = summaries[shard_id]
            imports = problem.imports
            for local in problem.exports:
                acc = summary.const[local]
                entry = summary.deps[local]
                if problem.masked:
                    for import_index, mask in entry.items():
                        acc |= value_at[imports[import_index]] & mask
                        steps += 1
                else:
                    for import_index in iter_bits(entry):
                        acc |= value_at[imports[import_index]]
                        steps += 1
                value_at[problem.nodes[local]] = acc
                steps += 1
    return value_at, steps


def backsub_shard(task: Tuple[ShardProblem, List[int]]) -> BacksubResult:
    """Phase-3 worker: concrete shard solve with stitched imports."""
    problem, import_values = task
    started = time.perf_counter()
    value, steps = _solve_concrete(problem, import_values)
    if problem.emit == "succ_or":
        out = [0] * len(problem.nodes)
        for node in range(len(problem.nodes)):
            acc = 0
            for q in problem.succ[node]:
                acc |= value[q]
            for i in problem.cross[node]:
                acc |= import_values[i]
            steps += len(problem.succ[node]) + len(problem.cross[node])
            out[node] = acc
    else:
        out = value
    return BacksubResult(
        shard_id=problem.shard_id,
        values=out,
        steps=steps,
        elapsed=time.perf_counter() - started,
    )
