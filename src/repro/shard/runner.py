"""Parallel shard execution over ``ProcessPoolExecutor``.

The runner is the shard subsystem's counterpart of the batch engine's
process pool (:mod:`repro.service.batch`): the same picklable-payload
discipline — module-level worker functions, plain-data arguments —
but fanning out *within* one program instead of across files.  One
runner is shared by every phase of a sharded analysis (RMOD and GMOD,
``MOD`` and ``USE``, summarize and back-substitute), so the pool forks
once and is reused for all eight maps.

``jobs <= 1`` runs in-process with no pool at all — the
sharded-sequential mode the benchmarks use to isolate partitioning
overhead from parallel speedup — and a pool that cannot start (e.g.
a sandbox forbidding fork) degrades to in-process execution rather
than failing the analysis.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Dict, List, Optional, Sequence, TypeVar

_T = TypeVar("_T")
_R = TypeVar("_R")

#: Below this many graph nodes in a shard wave, fanning the wave over
#: the pool costs more in payload pickling and round-trips than the
#: in-worker compute is worth — the wave runs in-process instead.
#: Callers that need the pooled path regardless (wire-codec coverage
#: tests) pass ``min_fanout_nodes=0``.
DEFAULT_MIN_FANOUT_NODES = 20000


class ShardRunner:
    """Maps worker functions over per-shard payloads, in order."""

    def __init__(
        self,
        jobs: Optional[int] = None,
        min_fanout_nodes: Optional[int] = None,
    ):
        if jobs is None or jobs <= 0:
            jobs = os.cpu_count() or 1
        self.jobs = jobs
        self.min_fanout_nodes = (
            DEFAULT_MIN_FANOUT_NODES
            if min_fanout_nodes is None
            else min_fanout_nodes
        )
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pool_broken = False
        #: Wall seconds per named map call (folded into phase stats).
        self.map_times: Dict[str, float] = {}
        #: Max in-worker seconds per named map call (the critical path
        #: a perfectly parallel execution could not beat).
        self.span_times: Dict[str, float] = {}

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __enter__(self) -> "ShardRunner":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _ensure_pool(self) -> Optional[ProcessPoolExecutor]:
        if self._pool is None and not self._pool_broken:
            try:
                self._pool = ProcessPoolExecutor(max_workers=self.jobs)
            except OSError:
                self._pool_broken = True
        return self._pool

    # -- mapping ------------------------------------------------------------

    def map(
        self,
        fn: Callable[[_T], _R],
        items: Sequence[_T],
        label: str = "map",
        decode: Optional[Callable[[_R, int], object]] = None,
        nodes: Optional[int] = None,
    ) -> List[_R]:
        """Apply ``fn`` to every item, preserving order.

        Uses the pool when it is worth it (more than one job *and*
        more than one item); falls back to in-process execution
        otherwise or when the pool cannot be created.

        ``nodes``, when given, is the total graph-node count behind the
        payloads — below ``min_fanout_nodes`` the map runs in-process,
        the same economics as the wave gate in the sharded solver.

        ``decode``, when given, post-processes each raw result in the
        parent (``decode(result, index)``) — the wire codec's blobs
        become real result objects *before* the span accounting reads
        their ``elapsed``.
        """
        tick = time.perf_counter()
        if (
            self.jobs <= 1
            or len(items) <= 1
            or (nodes is not None and nodes < self.min_fanout_nodes)
        ):
            results = [fn(item) for item in items]
        else:
            pool = self._ensure_pool()
            if pool is None:
                results = [fn(item) for item in items]
            else:
                try:
                    futures = [pool.submit(fn, item) for item in items]
                    results = [future.result() for future in futures]
                except OSError:
                    self._pool_broken = True
                    self._pool = None
                    results = [fn(item) for item in items]
        if decode is not None:
            results = [
                decode(result, index) for index, result in enumerate(results)
            ]
        elapsed = time.perf_counter() - tick
        self.map_times[label] = self.map_times.get(label, 0.0) + elapsed
        span = max(
            (getattr(r, "elapsed", 0.0) for r in results), default=0.0
        )
        self.span_times[label] = self.span_times.get(label, 0.0) + span
        return results

    # -- wave scheduling hints ----------------------------------------------

    def prefetch(self, statics: Sequence) -> None:
        """Hint that these ``(key, blob)`` statics will be mapped soon.

        The local pool ships statics inside task payloads, so there is
        nothing to warm — a no-op here.  The fleet runner overrides
        this to push the *next* wave's content-addressed static blobs
        to idle workers while the current wave computes.
        """
        return None
