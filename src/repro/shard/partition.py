"""SCC-condensation-respecting graph partitioner.

Both solver graphs — the binding multi-graph β (``RMOD``) and the call
multi-graph (``GMOD``) — are partitioned at *component* granularity:
the graph is condensed first (:func:`repro.graphs.scc.condense`) and
whole strongly connected components are assigned to shards, so no
strongly connected region ever spans a shard boundary.

That invariant is what keeps the hierarchical solve exact and one-pass
per shard (DESIGN.md, "Sharded solving"): every cycle of the
underlying multi-graph is interior to some shard, hence the
cross-shard *boundary* dependency graph is always acyclic — even when
the shard quotient graph is not (the greedy strategy may produce
quotient cycles; a cycle among boundary *nodes* would require an SCC
spanning two shards, which the partitioner forbids).

Three strategies:

* ``"greedy"`` — components are scanned in topological order (callers
  first) and each is placed on the shard that already owns the most of
  its incoming edges (fewest new cut edges), subject to a balance cap.
  ``O(N + E)`` and cut-aware.
* ``"chunk"`` — contiguous topological chunks of roughly equal node
  weight.  The shard quotient graph is then itself acyclic; this is
  the predictable fallback.
* ``"separator"`` — nested dissection along thin hub separators
  (:mod:`repro.shard.separator`): the plan carries a
  :class:`~repro.shard.separator.PartitionHierarchy` (separator tree,
  wave schedule, caller scopes) and its quotient is always acyclic
  with wave *width* — mutually independent leaf shards share a wave,
  which is what unlocks real parallel speedup.  Falls back to the
  greedy assignment when no thin cut exists.

Edge cases are first-class: an empty graph yields one empty shard, a
single requested shard yields the trivial plan, more shards than
components clamps to one component per shard, and a giant SCC simply
becomes one overweight shard with the remaining components spread over
the others.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.graphs.scc import condense

STRATEGIES = ("greedy", "chunk", "separator")


@dataclass
class ShardPlan:
    """A component-respecting assignment of graph nodes to shards."""

    requested_shards: int
    strategy: str
    num_nodes: int
    num_edges: int
    #: ``shard_of[node]`` → shard index.
    shard_of: List[int]
    #: ``shards[s]`` → member nodes, ascending.
    shards: List[List[int]]
    #: Multi-edges whose endpoints live on different shards.
    cut_edges: int
    num_components: int
    largest_component: int
    #: Deduplicated shard → shard successor lists (may be cyclic under
    #: the greedy strategy; never cyclic under "chunk").
    quotient: List[List[int]] = field(default_factory=list)
    #: The :class:`~repro.graphs.scc.Condensation` the partitioner ran
    #: on, kept so downstream consumers (:class:`ShardedSystem`) can
    #: derive shard-local SCC structure without re-running Tarjan.
    #: None for hand-built plans; excluded from :meth:`to_dict`.
    condensation: Optional[object] = None
    #: Separator tree + wave schedule + caller scopes
    #: (:class:`~repro.shard.separator.PartitionHierarchy`); only set
    #: by the ``"separator"`` strategy.
    hierarchy: Optional[object] = None

    @property
    def num_shards(self) -> int:
        """Effective shard count (may be below ``requested_shards``)."""
        return len(self.shards)

    def to_dict(self) -> Dict:
        sizes = [len(members) for members in self.shards]
        out = {
            "requested_shards": self.requested_shards,
            "num_shards": self.num_shards,
            "strategy": self.strategy,
            "num_nodes": self.num_nodes,
            "num_edges": self.num_edges,
            "cut_edges": self.cut_edges,
            "num_components": self.num_components,
            "largest_component": self.largest_component,
            "shard_sizes": sizes,
        }
        if self.hierarchy is not None:
            out["separator"] = self.hierarchy.to_dict()
        return out


def _count_edges(num_nodes: int, successors: Sequence[Sequence[int]]) -> int:
    return sum(len(successors[node]) for node in range(num_nodes))


def _finish_plan(
    requested: int,
    strategy: str,
    num_nodes: int,
    successors: Sequence[Sequence[int]],
    shard_of: List[int],
    num_shards: int,
    num_components: int,
    largest: int,
    condensation: Optional[object] = None,
) -> ShardPlan:
    shards: List[List[int]] = [[] for _ in range(num_shards)]
    for node in range(num_nodes):
        shards[shard_of[node]].append(node)
    cut = 0
    quotient: List[List[int]] = [[] for _ in range(num_shards)]
    last_seen = [-1] * num_shards
    for node in range(num_nodes):
        s = shard_of[node]
        for succ in successors[node]:
            t = shard_of[succ]
            if t == s:
                continue
            cut += 1
            if last_seen[t] != s:
                last_seen[t] = s
                quotient[s].append(t)
    # ``last_seen`` dedupes per source *node*; dedupe per shard properly.
    quotient = [sorted(set(targets)) for targets in quotient]
    return ShardPlan(
        requested_shards=requested,
        strategy=strategy,
        num_nodes=num_nodes,
        num_edges=_count_edges(num_nodes, successors),
        shard_of=shard_of,
        shards=shards,
        cut_edges=cut,
        num_components=num_components,
        largest_component=largest,
        quotient=quotient,
        condensation=condensation,
    )


def partition_graph(
    num_nodes: int,
    successors: Sequence[Sequence[int]],
    num_shards: int,
    strategy: str = "greedy",
    condensation: Optional[object] = None,
) -> ShardPlan:
    """Partition a multi-graph into at most ``num_shards`` shards.

    Whole SCCs are assigned, never split.  The effective shard count is
    ``min(num_shards, number of components)`` (and 1 for an empty
    graph, so every plan has at least one — possibly empty — shard).

    ``condensation``, when given, must be the
    :class:`~repro.graphs.scc.Condensation` of exactly this graph
    (e.g. the program arena's shared one) — the internal Tarjan pass is
    then skipped.
    """
    if strategy not in STRATEGIES:
        raise ValueError(
            "strategy must be one of %s, got %r" % (STRATEGIES, strategy)
        )
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1, got %d" % num_shards)
    if num_nodes == 0:
        return ShardPlan(
            requested_shards=num_shards,
            strategy=strategy,
            num_nodes=0,
            num_edges=0,
            shard_of=[],
            shards=[[]],
            cut_edges=0,
            num_components=0,
            largest_component=0,
            quotient=[[]],
        )

    if strategy == "separator":
        from repro.shard.separator import build_separator_plan

        return build_separator_plan(
            num_nodes, successors, num_shards, condensation=condensation
        )

    cond = condensation if condensation is not None else condense(num_nodes, successors)
    num_components = cond.num_components
    largest = max(len(members) for members in cond.components)
    effective = max(1, min(num_shards, num_components))
    shard_of = [-1] * num_nodes

    # Components in topological order: callers/roots first, so when a
    # component is placed every one of its predecessors already has a
    # shard (tarjan emits reverse topological order).
    topo_components = cond.topological_order()

    if effective == 1:
        for node in range(num_nodes):
            shard_of[node] = 0
        return _finish_plan(
            num_shards, strategy, num_nodes, successors, shard_of,
            1, num_components, largest, cond,
        )

    if strategy == "chunk":
        # Contiguous topological chunks of ~equal node weight.  A chunk
        # closes once cumulative weight passes i * total / effective —
        # or earlier, when the components left exactly cover the shards
        # left, so no trailing shard ends up empty.
        shard = 0
        placed_in_shard = 0
        placed_total = 0
        for order, comp in enumerate(topo_components):
            remaining = num_components - order  # Unplaced, incl. this one.
            if placed_in_shard > 0 and shard < effective - 1 and (
                placed_total >= (shard + 1) * num_nodes / effective
                or remaining == effective - shard
            ):
                shard += 1
                placed_in_shard = 0
            members = cond.components[comp]
            for node in members:
                shard_of[node] = shard
            placed_in_shard += len(members)
            placed_total += len(members)
        return _finish_plan(
            num_shards, strategy, num_nodes, successors, shard_of,
            effective, num_components, largest, cond,
        )

    # Greedy edge-cut: place each component on the shard owning the
    # most edges into it, subject to a balance cap with 15% slack.
    cap = max(1, -(-num_nodes * 115 // (effective * 100)))
    weight = [0] * effective
    comp_shard = [-1] * num_components
    # incoming[c][s] — multi-edges from already-placed nodes into c.
    incoming: List[Dict[int, int]] = [dict() for _ in range(num_components)]
    for comp in topo_components:
        members = cond.components[comp]
        votes = incoming[comp]
        best = -1
        best_votes = -1
        for s in range(effective):
            if weight[s] + len(members) > cap and weight[s] > 0:
                continue
            v = votes.get(s, 0)
            if v > best_votes:
                best = s
                best_votes = v
        if best < 0:
            # Every shard is at its cap (giant components): take the
            # lightest one.
            best = min(range(effective), key=lambda s: (weight[s], s))
        comp_shard[comp] = best
        weight[best] += len(members)
        for node in members:
            shard_of[node] = best
        # Register this component's outgoing edges as votes for its
        # successors (which are all placed later in topological order).
        for node in members:
            for succ in successors[node]:
                succ_comp = cond.component_of[succ]
                if succ_comp == comp:
                    continue
                bucket = incoming[succ_comp]
                bucket[best] = bucket.get(best, 0) + 1
    return _finish_plan(
        num_shards, strategy, num_nodes, successors, shard_of,
        effective, num_components, largest, cond,
    )
