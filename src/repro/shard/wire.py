"""Binary wire format for the shard process-pool boundary.

Pickling a :class:`~repro.shard.boundary.ShardProblem` ships the whole
shard structure — adjacency, SCCs, strip masks — on *every* map call,
and the default pickle encoding of a list of big-int masks is neither
compact nor cheap.  At 10k procedures the serialization bill dwarfed
the solve itself, so ``--jobs N`` lost to the monolithic solver.

This module replaces that traffic with the :mod:`repro.core.binio`
dialect (the same varint/mask primitives as the persist v3 summary
container):

* The *static* half of a problem — adjacency, cross-edge tables,
  exports, strips, SCC structure; everything seed-independent — is
  encoded **once** per :class:`~repro.shard.solve.ShardedSystem` into
  a compact blob and registered under a process-unique ``wire key``.
  Workers decode it on first sight and cache it by key, so repeated
  map calls (summarize + backsub, ``MOD`` + ``USE``) pay one bytes
  copy instead of four structure pickles.
* The *dynamic* half — seeds, import values, result masks — travels
  as length-prefixed little-endian mask blobs, built by
  ``int.to_bytes`` entirely inside CPython's C layer.

Derived fields (``comp_of``, ``comp_bite``) are reconstructed at
decode time rather than shipped.  Seeds and propagated values are
non-negative by construction (the driver strips seeds against the
carrier), but masked-engine dependency masks are ``~strips``
compositions — negative ints — so summaries use a signed mask
encoding (flag byte + magnitude of ``m`` or ``~m``).
"""

from __future__ import annotations

import itertools
import struct
import time
from typing import Dict, List, Tuple

from repro.core.binio import (
    read_mask,
    read_varint,
    write_mask,
    write_varint,
)
from repro.shard.boundary import (
    BacksubResult,
    ShardProblem,
    ShardSummary,
    _solve_concrete,
    summarize_shard,
)

_ELAPSED = struct.Struct("<d")

#: Parent-side key allocator.  Keys only need to be unique within the
#: parent process (workers are its children), so a plain counter does.
_KEYS = itertools.count(1)

#: Worker-side cache of decoded static problems, keyed by wire key.
#: Bounded: a long-lived pool serving many systems drops the oldest
#: entries rather than growing without limit.
_DECODED: Dict[int, ShardProblem] = {}
_DECODED_LIMIT = 64


# ---------------------------------------------------------------------------
# Mask-list and signed-mask primitives.
# ---------------------------------------------------------------------------


def encode_masks(masks: List[int]) -> bytes:
    """A list of non-negative big-int masks as one blob."""
    out = bytearray()
    write_varint(out, len(masks))
    for mask in masks:
        write_mask(out, mask)
    return bytes(out)


def decode_masks(blob: bytes) -> List[int]:
    count, pos = read_varint(blob, 0)
    masks = []
    for _ in range(count):
        mask, pos = read_mask(blob, pos)
        masks.append(mask)
    return masks


def _write_signed_mask(out: bytearray, mask: int) -> None:
    """A possibly-negative mask: flag byte, then the magnitude of
    ``mask`` (flag 0) or ``~mask`` (flag 1) — both non-negative."""
    if mask >= 0:
        out.append(0)
        write_mask(out, mask)
    else:
        out.append(1)
        write_mask(out, ~mask)


def _read_signed_mask(data: bytes, pos: int) -> Tuple[int, int]:
    flag = data[pos]
    mask, pos = read_mask(data, pos + 1)
    return (~mask if flag else mask), pos


#: Public names of the signed-mask strip primitives.  The effect-lane
#: trailer sections (:mod:`repro.lanes`) and any other out-of-tree mask
#: consumer encode through these, so every mask that crosses a process
#: or file boundary — shard traffic, fleet frames, lane blobs — shares
#: one codec.
write_signed_mask = _write_signed_mask
read_signed_mask = _read_signed_mask


# ---------------------------------------------------------------------------
# Static problem structure.
# ---------------------------------------------------------------------------


def encode_static(problem: ShardProblem) -> Tuple[int, bytes]:
    """Encode the seed-independent half of ``problem``.

    Returns ``(wire_key, blob)``; the caller sends both with every
    task and workers decode the blob at most once per key.
    """
    out = bytearray()
    write_varint(out, problem.shard_id)
    n = len(problem.nodes)
    write_varint(out, n)
    for adjacency in (problem.succ, problem.cross):
        for targets in adjacency:
            write_varint(out, len(targets))
            for target in targets:
                write_varint(out, target)
    write_varint(out, len(problem.imports))
    write_varint(out, len(problem.exports))
    for local in problem.exports:
        write_varint(out, local)
    if problem.strips is None:
        out.append(0)
    else:
        out.append(1)
        for mask in problem.strips:
            write_mask(out, mask)
    if problem.comps is None:
        out.append(0)
    else:
        out.append(1)
        write_varint(out, len(problem.comps))
        for comp in problem.comps:
            write_varint(out, len(comp))
            for member in comp:
                write_varint(out, member)
    return next(_KEYS), bytes(out)


def decode_static(blob: bytes) -> ShardProblem:
    """Rebuild a worker-side problem skeleton (seeds left empty).

    ``nodes`` and ``imports`` are reconstructed as index placeholders —
    the worker bodies only ever take their lengths; the global ids
    stay parent-side.
    """
    shard_id, pos = read_varint(blob, 0)
    n, pos = read_varint(blob, pos)
    succ: List[List[int]] = []
    cross: List[List[int]] = []
    for adjacency in (succ, cross):
        for _ in range(n):
            count, pos = read_varint(blob, pos)
            targets = []
            for _ in range(count):
                target, pos = read_varint(blob, pos)
                targets.append(target)
            adjacency.append(targets)
    num_imports, pos = read_varint(blob, pos)
    num_exports, pos = read_varint(blob, pos)
    exports = []
    for _ in range(num_exports):
        local, pos = read_varint(blob, pos)
        exports.append(local)
    strips = None
    has_strips = blob[pos]
    pos += 1
    if has_strips:
        strips = []
        for _ in range(n):
            mask, pos = read_mask(blob, pos)
            strips.append(mask)
    comps = None
    comp_of = None
    comp_bite = None
    has_comps = blob[pos]
    pos += 1
    if has_comps:
        num_comps, pos = read_varint(blob, pos)
        comps = []
        comp_of = [0] * n
        for comp_index in range(num_comps):
            count, pos = read_varint(blob, pos)
            comp = []
            for _ in range(count):
                member, pos = read_varint(blob, pos)
                comp.append(member)
                comp_of[member] = comp_index
            comps.append(comp)
        if strips is not None:
            comp_bite = []
            for comp in comps:
                bite = 0
                for member in comp:
                    bite |= strips[member]
                comp_bite.append(bite)
    return ShardProblem(
        shard_id=shard_id,
        nodes=list(range(n)),
        succ=succ,
        cross=cross,
        imports=list(range(num_imports)),
        seeds=[],
        strips=strips,
        exports=exports,
        comp_of=comp_of,
        comps=comps,
        comp_bite=comp_bite,
    )


def _cached_problem(key: int, static_blob: bytes) -> ShardProblem:
    problem = _DECODED.get(key)
    if problem is None:
        if len(_DECODED) >= _DECODED_LIMIT:
            for stale in sorted(_DECODED)[: _DECODED_LIMIT // 2]:
                del _DECODED[stale]
        problem = decode_static(static_blob)
        _DECODED[key] = problem
    return problem


# ---------------------------------------------------------------------------
# Phase-1: summarize.
# ---------------------------------------------------------------------------


def summarize_shard_wire(task: Tuple[int, bytes, bool, bytes]) -> bytes:
    """Worker body: decode, run :func:`summarize_shard`, encode."""
    key, static_blob, masked, seeds_blob = task
    problem = _cached_problem(key, static_blob)
    problem.seeds = decode_masks(seeds_blob)
    problem.masked = masked
    summary = summarize_shard(problem)
    out = bytearray()
    write_varint(out, summary.steps)
    out += _ELAPSED.pack(summary.elapsed)
    for export in problem.exports:
        write_mask(out, summary.const[export])
        entry = summary.deps[export]
        if masked:
            write_varint(out, len(entry))
            for import_index, mask in entry.items():
                write_varint(out, import_index)
                _write_signed_mask(out, mask)
        else:
            write_mask(out, entry)
    return bytes(out)


def decode_summary(blob: bytes, problem: ShardProblem) -> ShardSummary:
    """Parent-side inverse of :func:`summarize_shard_wire`, aligned to
    the parent's copy of the problem (export order, engine choice)."""
    steps, pos = read_varint(blob, 0)
    elapsed = _ELAPSED.unpack_from(blob, pos)[0]
    pos += _ELAPSED.size
    const: Dict[int, int] = {}
    deps: Dict[int, object] = {}
    for export in problem.exports:
        value, pos = read_mask(blob, pos)
        const[export] = value
        if problem.masked:
            count, pos = read_varint(blob, pos)
            entry: Dict[int, int] = {}
            for _ in range(count):
                import_index, pos = read_varint(blob, pos)
                mask, pos = _read_signed_mask(blob, pos)
                entry[import_index] = mask
            deps[export] = entry
        else:
            bitmask, pos = read_mask(blob, pos)
            deps[export] = bitmask
    return ShardSummary(
        shard_id=problem.shard_id,
        const=const,
        deps=deps,
        steps=steps,
        elapsed=elapsed,
    )


# ---------------------------------------------------------------------------
# Phase-3: back-substitute (also the wave-parallel concrete solve).
# ---------------------------------------------------------------------------


def backsub_shard_wire(
    task: Tuple[int, bytes, str, bytes, bytes]
) -> bytes:
    """Worker body: concrete solve with stitched/final imports.

    Besides the emit-selected output values, the blob carries the raw
    ``P`` value of every export — the wave scheduler needs those to
    feed downstream shards' imports, and under ``emit="succ_or"`` the
    output values are successor unions, not ``P``.
    """
    key, static_blob, emit, seeds_blob, imports_blob = task
    problem = _cached_problem(key, static_blob)
    problem.seeds = decode_masks(seeds_blob)
    problem.emit = emit
    import_values = decode_masks(imports_blob)
    started = time.perf_counter()
    value, steps = _solve_concrete(problem, import_values)
    if emit == "succ_or":
        # Same post-pass (and step accounting) as backsub_shard.
        values = [0] * len(problem.nodes)
        for node in range(len(problem.nodes)):
            acc = 0
            for q in problem.succ[node]:
                acc |= value[q]
            for i in problem.cross[node]:
                acc |= import_values[i]
            steps += len(problem.succ[node]) + len(problem.cross[node])
            values[node] = acc
    else:
        values = value
    elapsed = time.perf_counter() - started
    export_values = [value[local] for local in problem.exports]
    out = bytearray()
    write_varint(out, steps)
    out += _ELAPSED.pack(elapsed)
    for mask in values:
        write_mask(out, mask)
    for mask in export_values:
        write_mask(out, mask)
    return bytes(out)


def decode_backsub(
    blob: bytes, problem: ShardProblem
) -> Tuple[BacksubResult, List[int]]:
    """Parent-side inverse of :func:`backsub_shard_wire`; returns the
    result plus the export ``P`` values."""
    steps, pos = read_varint(blob, 0)
    elapsed = _ELAPSED.unpack_from(blob, pos)[0]
    pos += _ELAPSED.size
    values = []
    for _ in range(len(problem.nodes)):
        mask, pos = read_mask(blob, pos)
        values.append(mask)
    export_values = []
    for _ in range(len(problem.exports)):
        mask, pos = read_mask(blob, pos)
        export_values.append(mask)
    return (
        BacksubResult(
            shard_id=problem.shard_id,
            values=values,
            steps=steps,
            elapsed=elapsed,
        ),
        export_values,
    )
