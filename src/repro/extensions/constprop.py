"""Interprocedural constant propagation over the binding structure.

The binding multi-graph was introduced as "a simplification of the
graph used in our algorithms for interprocedural constant propagation"
(Section 3.1, citing Callahan–Cooper–Kennedy–Torczon 1986).  This
module runs that client analysis on CK programs: for every formal
parameter, the lattice value of its **entry value** across all call
sites, computed with jump functions and an optimistic fixpoint.

Lattice: ``TOP`` (no call site seen / undetermined) > ``Const(c)`` >
``BOTTOM`` (not a constant).  Jump function of an actual expression at
a site in procedure ``p``:

* an integer literal (or an arithmetic expression of jump-able values)
  evaluates to a constant;
* a bare reference to a formal ``f'`` of ``p`` (or of a lexical
  ancestor) *passes through* that formal's entry value — **provided
  the kill test shows f' cannot have been modified since entry**;
* anything else is ``BOTTOM``.

The kill test is where the side-effect analysis earns its keep: with a
:class:`~repro.core.summary.SideEffectSummary`, ``f'`` survives iff
``f' ∉ GMOD(owner)`` — not modified locally *nor through any call* in
its owning procedure.  Without it (``kill_policy="worstcase"``), a
caller containing any call site at all must assume every formal was
clobbered, and pass-through dies — the ablation benchmark quantifies
how many constants that costs.

A formal's entry constant is *substitutable* into its body only if the
formal itself is never modified during an invocation
(``f ∉ GMOD(owner)``), also reported.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.summary import SideEffectSummary
from repro.core.varsets import EffectKind
from repro.lang.nodes import BinOp, CallStmt, Expr, IntLit, UnOp, VarRef, walk_statements
from repro.lang.symbols import ProcSymbol, ResolvedProgram, VarSymbol


class _Kind(enum.Enum):
    TOP = "top"
    CONST = "const"
    BOTTOM = "bottom"


@dataclass(frozen=True)
class ConstLattice:
    """TOP > Const(c) > BOTTOM."""

    kind: _Kind
    value: int = 0

    @staticmethod
    def top() -> "ConstLattice":
        return _TOP

    @staticmethod
    def bottom() -> "ConstLattice":
        return _BOTTOM

    @staticmethod
    def const(value: int) -> "ConstLattice":
        return ConstLattice(_Kind.CONST, value)

    @property
    def is_top(self) -> bool:
        return self.kind is _Kind.TOP

    @property
    def is_bottom(self) -> bool:
        return self.kind is _Kind.BOTTOM

    @property
    def is_const(self) -> bool:
        return self.kind is _Kind.CONST

    def meet(self, other: "ConstLattice") -> "ConstLattice":
        if self.is_top:
            return other
        if other.is_top:
            return self
        if self.is_bottom or other.is_bottom:
            return _BOTTOM
        if self.value == other.value:
            return self
        return _BOTTOM

    def __repr__(self) -> str:
        if self.is_top:
            return "⊤"
        if self.is_bottom:
            return "⊥"
        return str(self.value)


_TOP = ConstLattice(_Kind.TOP)
_BOTTOM = ConstLattice(_Kind.BOTTOM)

_ARITH = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a // b if b != 0 else None,
    "div": lambda a, b: a // b if b != 0 else None,
    "mod": lambda a, b: a % b if b != 0 else None,
}


@dataclass
class ConstResult:
    """Entry-value constants for every formal parameter."""

    resolved: ResolvedProgram
    #: formal uid -> lattice value (entry value across all call sites).
    entry: Dict[int, ConstLattice]
    #: formal uid -> entry constant that is also safe to substitute
    #: for every use in the body (formal never modified).
    substitutable: Dict[int, int] = field(default_factory=dict)
    kill_policy: str = "precise"

    def entry_value(self, formal: VarSymbol) -> ConstLattice:
        return self.entry[formal.uid]

    def constants_found(self) -> int:
        return sum(1 for value in self.entry.values() if value.is_const)

    def substitutable_found(self) -> int:
        return len(self.substitutable)

    def report(self) -> str:
        lines: List[str] = []
        for proc in self.resolved.procs:
            for formal in proc.formals:
                value = self.entry[formal.uid]
                if value.is_const:
                    suffix = ""
                    if formal.uid in self.substitutable:
                        suffix = "  (substitutable)"
                    lines.append(
                        "%s = %r%s" % (formal.qualified_name, value, suffix)
                    )
        return "\n".join(lines)


def _caller_has_calls(proc: ProcSymbol) -> bool:
    return any(isinstance(s, CallStmt) for s in walk_statements(proc.body))


def solve_constants(
    resolved: ResolvedProgram,
    summary: Optional[SideEffectSummary] = None,
    kill_policy: str = "precise",
) -> ConstResult:
    """Optimistic fixpoint of the jump-function equations.

    ``kill_policy``: ``"precise"`` uses GMOD from ``summary`` (computed
    on demand when None); ``"worstcase"`` assumes any call clobbers
    every formal.
    """
    if kill_policy not in ("precise", "worstcase"):
        raise ValueError("kill_policy must be 'precise' or 'worstcase'")
    if kill_policy == "precise" and summary is None:
        from repro.core.pipeline import analyze_side_effects

        summary = analyze_side_effects(resolved, kinds=(EffectKind.MOD,))

    # survives[f.uid]: may f's entry value still be current at any
    # later point of its owner (flow-insensitively)?  The precise test
    # also checks f's alias partners — a formal aliased to a modified
    # variable shares its storage, so its entry value dies too.
    survives: Dict[int, bool] = {}
    has_calls = {proc.pid: _caller_has_calls(proc) for proc in resolved.procs}
    for proc in resolved.procs:
        for formal in proc.formals:
            if kill_policy == "precise":
                gmod = summary.solutions[EffectKind.MOD].gmod[proc.pid]
                killed = (gmod >> formal.uid) & 1 == 1
                partners = summary.aliases.partner_mask[proc.pid].get(formal.uid, 0)
                killed = killed or (gmod & partners) != 0
                survives[formal.uid] = not killed
            else:
                from repro.core.local import lmod_of

                locally_written = any(
                    (lmod_of(s) >> formal.uid) & 1
                    for s in walk_statements(proc.body)
                )
                survives[formal.uid] = not locally_written and not has_calls[proc.pid]

    entry: Dict[int, ConstLattice] = {}
    for proc in resolved.procs:
        for formal in proc.formals:
            entry[formal.uid] = ConstLattice.top()

    def jump(expr: Expr, caller: ProcSymbol) -> ConstLattice:
        if isinstance(expr, IntLit):
            return ConstLattice.const(expr.value)
        if isinstance(expr, VarRef) and not expr.indices:
            symbol: VarSymbol = expr.symbol
            if symbol.is_formal and symbol.proc in caller.lexical_chain():
                if survives[symbol.uid]:
                    return entry[symbol.uid]
                return ConstLattice.bottom()
            return ConstLattice.bottom()
        if isinstance(expr, UnOp) and expr.op == "-":
            inner = jump(expr.operand, caller)
            if inner.is_const:
                return ConstLattice.const(-inner.value)
            return inner if inner.is_top else ConstLattice.bottom()
        if isinstance(expr, BinOp) and expr.op in _ARITH:
            left = jump(expr.left, caller)
            right = jump(expr.right, caller)
            if left.is_top or right.is_top:
                return ConstLattice.top()
            if left.is_const and right.is_const:
                folded = _ARITH[expr.op](left.value, right.value)
                if folded is None:
                    return ConstLattice.bottom()
                return ConstLattice.const(folded)
            return ConstLattice.bottom()
        return ConstLattice.bottom()

    # Fixpoint: lattice height 2 per formal, so a few sweeps suffice;
    # a worklist keyed by callee keeps it near-linear.
    changed = True
    while changed:
        changed = False
        for site in resolved.call_sites:
            caller = site.caller
            for position, arg in enumerate(site.stmt.args):
                formal = site.callee.formals[position]
                merged = entry[formal.uid].meet(jump(arg, caller))
                if merged != entry[formal.uid]:
                    entry[formal.uid] = merged
                    changed = True

    substitutable: Dict[int, int] = {}
    for proc in resolved.procs:
        for formal in proc.formals:
            value = entry[formal.uid]
            if value.is_const and survives[formal.uid]:
                substitutable[formal.uid] = value.value

    return ConstResult(
        resolved=resolved,
        entry=entry,
        substitutable=substitutable,
        kill_policy=kill_policy,
    )
