"""Recompilation analysis: which procedures must be recompiled?

In a separate-compilation environment, each procedure was optimised
against the summary annotations (``MOD``/``USE`` at its call sites,
its callees' ``RMOD``) current at its last compilation.  After an edit,
a procedure needs recompilation exactly when the information its
compilation *consumed* has changed — not merely when something anywhere
changed (Torczon's dissertation, cited through the paper's lineage,
develops this discipline; we implement its summary-diff core).

Inputs are the serialized summary payloads of the two versions
(:func:`repro.core.persist.summary_to_dict`), so the analysis works
across compiler runs without live objects.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set


def _sites_by_caller(payload: Dict) -> Dict[str, List[Dict]]:
    grouped: Dict[str, List[Dict]] = {}
    for entry in payload["call_sites"]:
        grouped.setdefault(entry["caller"], []).append(entry)
    return grouped


def _consumed_annotations(site_entries: List[Dict]) -> List[Dict]:
    """The per-site facts a compilation of the caller depends on:
    callee identity (in order) and the MOD/USE/DMOD/DUSE name sets."""
    consumed = []
    for entry in site_entries:
        consumed.append(
            {
                "callee": entry["callee"],
                "mod": sorted(entry.get("mod", [])),
                "use": sorted(entry.get("use", [])),
                "dmod": sorted(entry.get("dmod", [])),
                "duse": sorted(entry.get("duse", [])),
            }
        )
    return consumed


def recompilation_set(
    old_payload: Dict,
    new_payload: Dict,
    edited: Iterable[str] = (),
) -> Set[str]:
    """Procedures (qualified names, new version) needing recompilation.

    A procedure must be recompiled when:

    * it was edited (or is new in this version), or
    * the annotation sequence at its call sites changed — different
      callees (an edit re-routed a call) or different MOD/USE sets (an
      edit elsewhere changed a summary it optimised against).

    Everything else can keep its object code: the facts it compiled
    against still hold.
    """
    result: Set[str] = set(edited)
    old_sites = _sites_by_caller(old_payload)
    new_sites = _sites_by_caller(new_payload)
    old_procs = set(old_payload["procedures"])
    for name in new_payload["procedures"]:
        if name in result:
            continue
        if name not in old_procs:
            result.add(name)
            continue
        old_consumed = _consumed_annotations(old_sites.get(name, []))
        new_consumed = _consumed_annotations(new_sites.get(name, []))
        if old_consumed != new_consumed:
            result.add(name)
    return result


def recompilation_report(old_payload: Dict, new_payload: Dict,
                         edited: Iterable[str] = ()) -> str:
    """Human-readable breakdown of the recompilation decision."""
    edited = set(edited)
    needed = recompilation_set(old_payload, new_payload, edited)
    lines = []
    total = len(new_payload["procedures"])
    for name in sorted(new_payload["procedures"]):
        if name in edited:
            reason = "edited"
        elif name not in old_payload["procedures"]:
            reason = "new procedure"
        elif name in needed:
            reason = "call-site annotations changed"
        else:
            reason = "up to date"
        lines.append("%-24s %s" % (name, reason))
    lines.append("")
    lines.append("recompile %d of %d procedures" % (len(needed), total))
    return "\n".join(lines)
