"""Downstream clients and extensions of the side-effect analysis.

These are the applications the paper's research program built the
analysis *for*:

* :mod:`repro.extensions.constprop` — interprocedural constant
  propagation over the binding structure (the CCKT 86 work the binding
  multi-graph was distilled from; Section 3.1 cites it as β's origin),
  using MOD information for its kill tests;
* :mod:`repro.extensions.recompilation` — which procedures must be
  recompiled after an edit, by diffing the summary information their
  compilations consumed (the programming-environment application);
* :mod:`repro.extensions.purity` — pure/observer/mutator procedure
  grades straight from the MOD/USE sets (hoisting, memoisation,
  reordering legality).
"""

from repro.extensions.constprop import ConstLattice, solve_constants
from repro.extensions.recompilation import recompilation_set
from repro.extensions.purity import Purity, classify_purity, purity_report
from repro.extensions.regpromo import (
    PromotionCount,
    count_redundant_loads,
    promotion_report,
)

__all__ = [
    "ConstLattice",
    "solve_constants",
    "recompilation_set",
    "Purity",
    "classify_purity",
    "purity_report",
    "PromotionCount",
    "count_redundant_loads",
    "promotion_report",
]
