"""Procedure purity classification from the side-effect summaries.

The cheapest and most classical client of MOD/USE information: a call
to a procedure that provably modifies nothing the caller can observe
can be reordered, hoisted out of loops, executed speculatively, or
memoised.  Three grades, each defined purely in terms of the paper's
sets:

* ``PURE``      — ``GMOD(p)`` contains nothing that survives ``p``'s
  return (no globals, no up-level variables, no reference formals):
  an invocation is observationally a no-op except through ``print``.
* ``OBSERVER``  — modifies nothing visible but may *read* externally
  visible state (``GUSE`` non-trivial): safe to delete if its result is
  unused, safe to reorder against writes it doesn't read.
* ``MUTATOR``   — everything else.

``print``/``read`` statements are IO and disqualify PURE/OBSERVER
reordering in general; they are detected syntactically and reported as
an ``io`` flag alongside the grade.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.summary import SideEffectSummary
from repro.core.varsets import EffectKind
from repro.lang.nodes import Print, Read, walk_statements
from repro.lang.symbols import ProcSymbol, ResolvedProgram


class Purity(enum.Enum):
    PURE = "pure"
    OBSERVER = "observer"
    MUTATOR = "mutator"


@dataclass(frozen=True)
class ProcPurity:
    proc: ProcSymbol
    grade: Purity
    performs_io: bool

    def render(self) -> str:
        io_note = " +io" if self.performs_io else ""
        return "%-20s %s%s" % (self.proc.qualified_name, self.grade.value, io_note)


def _performs_io(resolved: ResolvedProgram, proc: ProcSymbol,
                 reaches: List[bool]) -> bool:
    """IO anywhere in a procedure reachable from ``proc`` (or nested)."""
    for other in resolved.procs:
        if not reaches[other.pid]:
            continue
        for stmt in walk_statements(other.body):
            if isinstance(stmt, (Print, Read)):
                return True
    return False


def classify_purity(summary: SideEffectSummary) -> Dict[int, ProcPurity]:
    """Per-pid purity grades for every procedure except main."""
    resolved = summary.resolved
    universe = summary.universe
    mod_solution = summary.solutions[EffectKind.MOD]
    use_solution = summary.solutions.get(EffectKind.USE)

    from repro.graphs.dfs import reachable_from

    graph = summary.call_graph
    out: Dict[int, ProcPurity] = {}
    for proc in resolved.procs:
        if proc.is_main:
            continue
        escaping = mod_solution.gmod[proc.pid] & ~universe.local_mask[proc.pid]
        escaping |= mod_solution.rmod.proc_mask[proc.pid]
        reaches = reachable_from(graph.num_nodes, graph.successors, [proc.pid])
        io_flag = _performs_io(resolved, proc, reaches)
        if escaping == 0:
            grade = Purity.PURE
        else:
            grade = Purity.MUTATOR
        if grade is Purity.PURE and use_solution is not None:
            # Reading formals is just consuming the arguments — only
            # reads of state *beyond* the frame (globals, up-level
            # variables) make the procedure an observer.
            observes = use_solution.gmod[proc.pid] & ~universe.local_mask[proc.pid]
            if observes:
                grade = Purity.OBSERVER
        out[proc.pid] = ProcPurity(proc=proc, grade=grade, performs_io=io_flag)
    return out


def purity_report(summary: SideEffectSummary) -> str:
    classified = classify_purity(summary)
    lines = [entry.render() for _, entry in sorted(classified.items())]
    counts: Dict[Purity, int] = {}
    for entry in classified.values():
        counts[entry.grade] = counts.get(entry.grade, 0) + 1
    lines.append("")
    lines.append(
        ", ".join(
            "%d %s" % (counts.get(grade, 0), grade.value) for grade in Purity
        )
    )
    return "\n".join(lines)
