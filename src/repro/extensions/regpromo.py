"""Redundant-load elimination across calls — the Section 2 client.

The paper's introduction: without interprocedural information a
compiler "must assume that the called procedure both uses and modifies
the value of every variable it can see", so every call boundary flushes
every register.  This module implements the classical counting client:
walk each procedure in statement order keeping the set of scalar
variables whose current value is known to be in a register; a load of a
known variable is *redundant* (eliminable); a call kills whatever its
policy says it may modify.

Three policies, so the value of the analysis is measurable:

* ``worst-case`` — a call kills every variable visible in the caller;
* ``mod``        — a call kills exactly its ``MOD`` set (the paper);
* ``oracle``     — a call kills only what a given execution trace
  observed it modify (a dynamic lower bound, not a sound policy).

The counting walk is deliberately simple — straight-line per procedure,
flow-insensitive at branches (an ``if``/``while``/``for`` body is
walked in order; join precision is not modelled) — because the point is
the *relative* effect of the call-kill policy, not a production
register allocator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set

from repro.core.summary import SideEffectSummary
from repro.lang.interp import TraceResult
from repro.lang.nodes import (
    Assign,
    CallStmt,
    For,
    If,
    Read,
    VarRef,
    While,
    walk_statements,
)
from repro.lang.symbols import ResolvedProgram, VarSymbol


def _loads_in_expr(expr) -> List[VarSymbol]:
    """Scalar variable loads in an expression (bases and subscripts)."""
    out: List[VarSymbol] = []
    stack = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, VarRef):
            if not node.indices:
                out.append(node.symbol)
            stack.extend(node.indices)
        elif hasattr(node, "left"):
            stack.extend([node.left, node.right])
        elif hasattr(node, "operand"):
            stack.append(node.operand)
    return out


def _statement_loads(stmt) -> List[VarSymbol]:
    if isinstance(stmt, Assign):
        loads = _loads_in_expr(stmt.value)
        for index in stmt.target.indices:
            loads += _loads_in_expr(index)
        return loads
    if isinstance(stmt, (If, While)):
        return _loads_in_expr(stmt.cond)
    if isinstance(stmt, For):
        return _loads_in_expr(stmt.lo) + _loads_in_expr(stmt.hi)
    if isinstance(stmt, CallStmt):
        loads: List[VarSymbol] = []
        for arg in stmt.args:
            if isinstance(arg, VarRef):
                for index in arg.indices:
                    loads += _loads_in_expr(index)
            else:
                loads += _loads_in_expr(arg)
        return loads
    return []


KillPolicy = Callable[[CallStmt], Set[VarSymbol]]


@dataclass(frozen=True)
class PromotionCount:
    """Result of one counting walk."""

    total_loads: int
    eliminated: int

    @property
    def fraction(self) -> float:
        if self.total_loads == 0:
            return 0.0
        return self.eliminated / self.total_loads


def count_redundant_loads(resolved: ResolvedProgram,
                          kill_policy: KillPolicy) -> PromotionCount:
    """Count scalar loads provably redundant under ``kill_policy``."""
    total = 0
    eliminated = 0
    for proc in resolved.procs:
        known: Set[VarSymbol] = set()
        for stmt in walk_statements(proc.body):
            for symbol in _statement_loads(stmt):
                total += 1
                if symbol in known:
                    eliminated += 1
                else:
                    known.add(symbol)
            if isinstance(stmt, (Assign, Read)):
                known.add(stmt.target.symbol)
            elif isinstance(stmt, For):
                known.discard(stmt.var.symbol)
            elif isinstance(stmt, CallStmt):
                known -= kill_policy(stmt)
    return PromotionCount(total_loads=total, eliminated=eliminated)


def worst_case_policy(resolved: ResolvedProgram) -> KillPolicy:
    """Every call kills every variable visible in its caller."""

    def kill(stmt: CallStmt) -> Set[VarSymbol]:
        caller = resolved.call_sites[stmt.site_id].caller
        return set(resolved.visible_variables(caller).values())

    return kill


def mod_policy(summary: SideEffectSummary) -> KillPolicy:
    """A call kills exactly its MOD set — the paper's improvement."""

    def kill(stmt: CallStmt) -> Set[VarSymbol]:
        site = summary.resolved.call_sites[stmt.site_id]
        return summary.mod(site)

    return kill


def oracle_policy(trace: TraceResult) -> KillPolicy:
    """A call kills only what this execution observed it modify.
    A dynamic bound for comparison; unsound as a compiler policy."""

    def kill(stmt: CallStmt) -> Set[VarSymbol]:
        return set(trace.observed_mod.get(stmt.site_id, set()))

    return kill


def promotion_report(resolved: ResolvedProgram, summary: SideEffectSummary,
                     trace: Optional[TraceResult] = None) -> Dict[str, PromotionCount]:
    """Counts under every applicable policy."""
    report = {
        "worst-case": count_redundant_loads(resolved, worst_case_policy(resolved)),
        "mod": count_redundant_loads(resolved, mod_policy(summary)),
    }
    if trace is not None:
        report["oracle"] = count_redundant_loads(resolved, oracle_policy(trace))
    return report
