"""Dyck-reachability alias baseline (differential precision oracle).

Banning-style pair propagation (:mod:`repro.core.aliases`, the fast
path) is *call-path sensitive in one respect*: a formal only aliases
what flows to it through an actual call chain, matched call/return
style.  The classic coarser alternative formulates reference-parameter
aliasing as reachability over the *binding* edges alone — the CFL-/
Dyck-reachability family — and simply ignores whether two flows can
share a call path.

This module implements that coarser solver as an *origin-set* closure:

* every variable starts as its own origin, ``O(v) = {v}``;
* every by-reference binding ``actual a → formal f`` at any call site
  adds ``O(f) ⊇ O(a)``;
* two extant variables of ``q`` may alias iff at least one is a formal
  and ``O(a) ∩ O(b) ≠ ∅``.

Origins only ever grow along binding edges, which is exactly the
"unbalanced parentheses" relaxation of Dyck reachability: every alias
pair Banning's rules can introduce shares an origin (rules 1/2 bind
two formals through one actual; rule 3 puts the actual itself in the
formal's origin set; rule 4 composes with an inductively-shared
origin; rule 5 only re-scopes existing pairs), so by induction over
rule applications ``ALIAS(q) ⊆ DYCK(q)`` for every procedure — the
property :func:`compare_precision` checks pair-by-pair and the lane
test suite pins across the differential sweep.

The reverse inclusion fails on purpose: Dyck reachability conflates
call sites, so a formal reached by two *different* actuals from two
*unrelated* call chains reports pairs the precise analysis rejects.
The gap (``dyck_only_pairs``) is the measured precision value of the
paper's pair propagation.

This solver is **never** on the fast path — no arena, no condensation,
no masks shared with the pipeline.  It exists to be differentially
compared against, nothing else.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set

from repro.core.aliases import AliasResult, Pair, _pair
from repro.core.varsets import VariableUniverse
from repro.lang.symbols import ResolvedProgram


def dyck_origins(resolved: ResolvedProgram) -> List[int]:
    """The origin-set closure: per uid, the mask of variables whose
    value can reach this one through by-reference bindings."""
    num_vars = len(resolved.variables)
    origin: List[int] = [1 << uid for uid in range(num_vars)]

    # actual base uid -> formal uids it binds to (across all sites).
    edges: Dict[int, List[int]] = {}
    for site in resolved.call_sites:
        formals = site.callee.formals
        for binding in site.bindings:
            if not binding.by_reference:
                continue
            formal_uid = formals[binding.position].uid
            targets = edges.setdefault(binding.base.uid, [])
            if formal_uid not in targets:
                targets.append(formal_uid)

    worklist = list(edges)
    queued = set(worklist)
    while worklist:
        source = worklist.pop()
        queued.discard(source)
        spread = origin[source]
        for formal_uid in edges.get(source, ()):
            merged = origin[formal_uid] | spread
            if merged != origin[formal_uid]:
                origin[formal_uid] = merged
                if formal_uid not in queued:
                    worklist.append(formal_uid)
                    queued.add(formal_uid)
    return origin


def compute_dyck_aliases(
    resolved: ResolvedProgram,
    universe: VariableUniverse = None,
) -> List[Set[Pair]]:
    """``DYCK(q)`` per pid: formal-involving extant pairs with
    intersecting origin sets."""
    if universe is None:
        universe = VariableUniverse(resolved)
    origin = dyck_origins(resolved)
    num_vars = len(resolved.variables)
    formal_uids = [
        uid
        for uid in range(num_vars)
        if resolved.variables[uid].is_formal
    ]

    out: List[Set[Pair]] = []
    for proc in resolved.procs:
        extant = universe.extant_mask(proc)
        pair_set: Set[Pair] = set()
        for a in formal_uids:
            if not (extant >> a) & 1:
                continue
            origin_a = origin[a]
            for b in range(num_vars):
                if b == a or not (extant >> b) & 1:
                    continue
                if origin_a & origin[b]:
                    pair_set.add(_pair(a, b))
        out.append(pair_set)
    return out


@dataclass
class PrecisionReport:
    """Differential comparison ``ALIAS(q)`` vs ``DYCK(q)``."""

    #: True iff ``ALIAS(q) ⊆ DYCK(q)`` held for every procedure.
    subset_holds: bool
    alias_pairs: int
    dyck_pairs: int
    #: Pairs the Dyck baseline reports that pair propagation rejects
    #: (its measured precision win), per pid.
    dyck_only: List[Set[Pair]] = field(default_factory=list)
    #: Any pairs the precise analysis has but Dyck misses — must stay
    #: empty; a non-empty entry is a soundness bug in one of the two.
    alias_only: List[Set[Pair]] = field(default_factory=list)

    @property
    def dyck_only_pairs(self) -> int:
        return sum(len(pair_set) for pair_set in self.dyck_only)

    def describe(self) -> str:
        return (
            "dyck-baseline: subset=%s alias=%d dyck=%d imprecision=+%d"
            % (
                self.subset_holds,
                self.alias_pairs,
                self.dyck_pairs,
                self.dyck_only_pairs,
            )
        )


def compare_precision(
    resolved: ResolvedProgram,
    aliases: AliasResult,
    universe: VariableUniverse = None,
) -> PrecisionReport:
    """Check ``ALIAS(q) ⊆ DYCK(q)`` per procedure and measure the gap."""
    dyck = compute_dyck_aliases(resolved, universe)
    dyck_only: List[Set[Pair]] = []
    alias_only: List[Set[Pair]] = []
    for pid in range(resolved.num_procs):
        precise = aliases.pairs[pid]
        coarse = dyck[pid]
        dyck_only.append(coarse - precise)
        alias_only.append(precise - coarse)
    return PrecisionReport(
        subset_holds=all(not extra for extra in alias_only),
        alias_pairs=aliases.total_pairs(),
        dyck_pairs=sum(len(pair_set) for pair_set in dyck),
        dyck_only=dyck_only,
        alias_only=alias_only,
    )
