"""Baseline solvers the paper measures itself against.

* :mod:`repro.baselines.iterative` — Kam–Ullman style worklist
  iteration, both on the *undecomposed* equation (1) (the classical
  formulation whose direct solution "will not achieve the fast time
  bounds") and on the decomposed equations (4) and (6);
* :mod:`repro.baselines.swift` — a stand-in for the authors' earlier
  *swift* algorithm: binding-summary propagation whose unit of work is
  a length-``Nβ`` bit vector, reproducing the ``O(Nβ·E_C)``-flavoured
  cost the paper's Section 3.2 comparison is about;
* :mod:`repro.baselines.naive` — per-procedure reachability closure,
  ``O(N·(N+E))``, an independent oracle for two-level programs;
* :mod:`repro.baselines.dyck` — Dyck-reachability alias baseline, a
  coarser origin-set closure used only as a differential precision
  oracle against pair propagation (``ALIAS(q) ⊆ DYCK(q)``).
"""

from repro.baselines.dyck import (
    compare_precision,
    compute_dyck_aliases,
    dyck_origins,
)
from repro.baselines.iterative import (
    solve_direct_equation1,
    solve_gmod_iterative,
    solve_gmod_roundrobin,
    solve_rmod_iterative,
)
from repro.baselines.swift import solve_rmod_swift
from repro.baselines.naive import solve_gmod_naive

__all__ = [
    "solve_direct_equation1",
    "solve_gmod_iterative",
    "solve_gmod_roundrobin",
    "solve_rmod_iterative",
    "solve_rmod_swift",
    "solve_gmod_naive",
    "compare_precision",
    "compute_dyck_aliases",
    "dyck_origins",
]
