"""Iterative (Kam–Ullman worklist) baselines.

Three solvers:

* :func:`solve_direct_equation1` — the *undecomposed* classical
  formulation, equation (1)::

      GMOD(p) = IMOD(p) ∪ ∪_{e=(p,q)} b_e(GMOD(q))

  with the full binding function ``b_e`` (formals mapped through the
  call site's actuals, locals of the callee filtered out).  This is the
  system the paper says no standard data-flow algorithm solves within
  the fast bounds, because ``b_e`` is not a simple mask.  Its least
  fixpoint is the ground truth the decomposed pipeline must match —
  the correctness cross-check used throughout the test suite.

* :func:`solve_gmod_iterative` — worklist iteration of the decomposed
  equation (4), given ``IMOD+``.  Same answer as ``findgmod`` but
  without the single-pass guarantee (a node may be re-processed once
  per lattice change along any path).

* :func:`solve_rmod_iterative` — worklist iteration of equation (6)
  over the binding multi-graph; the simple baseline for Figure 1.

Each returns the solution plus an iteration/step count so the
benchmarks can compare work, not just wall time.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.bitvec import OpCounter
from repro.core.local import LocalAnalysis
from repro.core.varsets import EffectKind, VariableUniverse
from repro.graphs.binding import BindingMultiGraph
from repro.graphs.callgraph import CallMultiGraph
from repro.lang.symbols import CallSite, ResolvedProgram


def _project_equation1(site: CallSite, callee_gmod: int, universe: VariableUniverse) -> int:
    """The full ``b_e``: filter callee locals, map formals to actuals."""
    callee = site.callee
    mask = callee_gmod & ~universe.local_mask[callee.pid]
    for binding in site.bindings:
        if not binding.by_reference:
            continue
        formal = callee.formals[binding.position]
        if (callee_gmod >> formal.uid) & 1:
            mask |= 1 << binding.base.uid
    return mask


def solve_direct_equation1(
    resolved: ResolvedProgram,
    local: LocalAnalysis,
    universe: VariableUniverse,
    kind: EffectKind = EffectKind.MOD,
    counter: Optional[OpCounter] = None,
) -> List[int]:
    """Least fixpoint of the classical undecomposed equation (1),
    seeded with the (nesting-extended) ``IMOD`` sets.

    Worklist over call-graph edges; each pass over a site costs one
    bit-vector step plus one single-bit test per reference binding.
    """
    if counter is None:
        counter = OpCounter()
    num_procs = resolved.num_procs
    gmod = list(local.initial(kind))
    sites_by_caller: List[List[CallSite]] = [[] for _ in range(num_procs)]
    for site in resolved.call_sites:
        sites_by_caller[site.caller.pid].append(site)
    # When GMOD(q) grows, every caller of q must be revisited.
    callers_of: List[List[int]] = [[] for _ in range(num_procs)]
    for site in resolved.call_sites:
        callers_of[site.callee.pid].append(site.caller.pid)

    worklist = list(range(num_procs))
    queued = [True] * num_procs
    while worklist:
        pid = worklist.pop()
        queued[pid] = False
        value = gmod[pid]
        for site in sites_by_caller[pid]:
            value |= _project_equation1(site, gmod[site.callee.pid], universe)
            counter.bit_vector_steps += 1
        if value != gmod[pid]:
            gmod[pid] = value
            for caller in callers_of[pid]:
                if not queued[caller]:
                    queued[caller] = True
                    worklist.append(caller)
    return gmod


def solve_gmod_iterative(
    graph: CallMultiGraph,
    imod_plus: Sequence[int],
    universe: VariableUniverse,
    kind: EffectKind = EffectKind.MOD,
    counter: Optional[OpCounter] = None,
) -> List[int]:
    """Worklist iteration of the decomposed equation (4)."""
    if counter is None:
        counter = OpCounter()
    num_nodes = graph.num_nodes
    gmod = [imod_plus[pid] for pid in range(num_nodes)]
    predecessors: List[List[int]] = [[] for _ in range(num_nodes)]
    for node in range(num_nodes):
        for succ in graph.successors[node]:
            predecessors[succ].append(node)

    worklist = list(range(num_nodes))
    queued = [True] * num_nodes
    while worklist:
        node = worklist.pop()
        queued[node] = False
        value = gmod[node]
        for succ in graph.successors[node]:
            value |= gmod[succ] & ~universe.local_mask[succ]
            counter.bit_vector_steps += 1
        if value != gmod[node]:
            gmod[node] = value
            for pred in predecessors[node]:
                if not queued[pred]:
                    queued[pred] = True
                    worklist.append(pred)
    return gmod


def solve_gmod_roundrobin(
    graph: CallMultiGraph,
    imod_plus: Sequence[int],
    universe: VariableUniverse,
    kind: EffectKind = EffectKind.MOD,
    counter: Optional[OpCounter] = None,
) -> Tuple[List[int], int]:
    """Kam–Ullman round-robin iteration of equation (4).

    The paper calls the decomposed system "trivially rapid, so that
    both the iterative algorithm and the Graham-Wegman algorithm will
    achieve their fast time bounds".  For a rapid framework, round-robin
    iteration in reverse-postorder converges in ``d(G) + 3`` passes
    (``d`` = loop-connectedness).  Returns ``(solution, passes)`` so the
    tests can check that bound empirically.

    Node order: a reverse DFS finishing order over the *reversed*
    dependence direction — equation (4) pulls information from callees,
    so we sweep callees before callers (Tarjan emission order).
    """
    if counter is None:
        counter = OpCounter()
    from repro.graphs.scc import tarjan_scc

    num_nodes = graph.num_nodes
    component_of, components = tarjan_scc(num_nodes, graph.successors)
    order: List[int] = [node for comp in components for node in comp]

    gmod = [imod_plus[pid] for pid in range(num_nodes)]
    passes = 0
    changed = True
    while changed:
        changed = False
        passes += 1
        for node in order:
            value = gmod[node]
            for succ in graph.successors[node]:
                value |= gmod[succ] & ~universe.local_mask[succ]
                counter.bit_vector_steps += 1
            if value != gmod[node]:
                gmod[node] = value
                changed = True
    return gmod, passes


def solve_rmod_iterative(
    graph: BindingMultiGraph,
    local: LocalAnalysis,
    kind: EffectKind = EffectKind.MOD,
    counter: Optional[OpCounter] = None,
) -> List[bool]:
    """Worklist iteration of equation (6) over β.

    Returns the per-node boolean vector (same indexing as
    :class:`~repro.core.rmod.RmodResult.node_value`).
    """
    if counter is None:
        counter = OpCounter()
    initial = local.initial(kind)
    num_nodes = graph.num_formals
    value = [False] * num_nodes
    for node, formal in enumerate(graph.formals):
        value[node] = (initial[formal.proc.pid] >> formal.uid) & 1 == 1
        counter.single_bit_steps += 1

    predecessors: List[List[int]] = [[] for _ in range(num_nodes)]
    for node in range(num_nodes):
        for succ in graph.successors[node]:
            predecessors[succ].append(node)

    worklist = [node for node in range(num_nodes) if value[node]]
    while worklist:
        node = worklist.pop()
        for pred in predecessors[node]:
            counter.single_bit_steps += 1
            if not value[pred]:
                value[pred] = True
                worklist.append(pred)
    return value
