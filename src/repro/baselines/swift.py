"""A stand-in for the authors' earlier *swift* algorithm (SIGPLAN '84).

The swift algorithm solved the reference-formal-parameter problem by
computing **summaries of parameter binding relationships** over the
call multi-graph (a path-expression problem solved with Tarjan's
path-compression eliminator) and then combining each formal's binding
summary with the ``IMOD`` information.  Its cost is
``O(E_C·α(E_C, N_C))`` operations on **bit vectors of length ``Nβ``**
— and Section 3.2's central comparison is that interprocedural bit
vectors grow with program size, so the real cost is
``O(Nβ·E_C·α(E_C,N_C))`` bit operations, an order of magnitude worse
than the binding-multi-graph method's ``O(k·E_C)`` single-bit steps.

Tarjan's eliminator is far too entangled with reducibility machinery to
transcribe here; what matters for the reproduction is the *cost shape*
and the answer.  This substitute keeps both:

1. compute, for every formal parameter, its full **binding summary** —
   the set of formals reachable from it in β — as a length-``Nβ`` bit
   vector, by SCC condensation and one reverse-topological sweep
   (``O(Eβ)`` *vector* unions, hence ``O(Nβ·Eβ)`` bit operations);
2. ``RMOD(fp)`` is then true iff the summary intersects the set of
   locally-modified formals (one more vector operation per node).

The answer is identical to Figure 1's (reachability from modified
formals); every unit of work is a whole-vector operation, as in swift.
``DESIGN.md`` records this substitution.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.bitvec import OpCounter
from repro.core.local import LocalAnalysis
from repro.core.varsets import EffectKind
from repro.graphs.binding import BindingMultiGraph
from repro.graphs.scc import tarjan_scc


def solve_rmod_swift(
    graph: BindingMultiGraph,
    local: LocalAnalysis,
    kind: EffectKind = EffectKind.MOD,
    counter: Optional[OpCounter] = None,
) -> List[bool]:
    """Binding-summary solution of the reference-parameter problem.

    Returns the per-β-node ``RMOD`` boolean vector.  ``counter``
    tallies one ``bit_vector_steps`` per length-``Nβ`` vector
    operation, matching the swift cost model.
    """
    if counter is None:
        counter = OpCounter()
    num_nodes = graph.num_formals
    initial = local.initial(kind)

    # The modified-formals vector (one bit per β node).
    modified = 0
    for node, formal in enumerate(graph.formals):
        if (initial[formal.proc.pid] >> formal.uid) & 1:
            modified |= 1 << node
    counter.bit_vector_steps += 1

    # Binding summaries: reachable β-node sets, shared per SCC.
    component_of, components = tarjan_scc(num_nodes, graph.successors)
    num_components = len(components)
    summary = [0] * num_components
    # Components arrive callees-first, so successors are final.
    for comp_index, members in enumerate(components):
        value = 0
        for member in members:
            value |= 1 << member
            counter.bit_vector_steps += 1
        for member in members:
            for succ in graph.successors[member]:
                succ_comp = component_of[succ]
                if succ_comp != comp_index:
                    value |= summary[succ_comp]
                counter.bit_vector_steps += 1
        summary[comp_index] = value

    # RMOD(fp) = summary(fp) ∩ modified ≠ ∅ — one vector op per node.
    result = [False] * num_nodes
    for node in range(num_nodes):
        result[node] = (summary[component_of[node]] & modified) != 0
        counter.bit_vector_steps += 1
    return result
