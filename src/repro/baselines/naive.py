"""Naive per-procedure reachability closure for the global phase.

For a two-level (C/Fortran-style) program, Section 4 observes that
``GMOD(p)`` is "simply ``IMOD+(p)`` augmented by those global variables
that are modified in some procedure reachable by a call chain from
``p``" — a generalised reachability problem.  The naive way to solve a
reachability-union problem is one graph traversal **per procedure**:
``O(N_C·(N_C + E_C))`` time, ``O(N_C + E_C)`` bit-vector steps per
source.  ``findgmod``'s point is to do all sources in a single pass.

This solver is only correct for two-level programs (it applies no
``LOCAL`` filtering along chains); the pipeline never uses it — it is
an independent oracle and the quadratic baseline for benchmark E4.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.bitvec import OpCounter
from repro.core.varsets import VariableUniverse
from repro.graphs.callgraph import CallMultiGraph


def solve_gmod_naive(
    graph: CallMultiGraph,
    imod_plus: Sequence[int],
    universe: VariableUniverse,
    counter: Optional[OpCounter] = None,
) -> List[int]:
    """One DFS per procedure: ``GMOD(p) = IMOD+(p) ∪
    ∪_{q reachable from p} (IMOD+(q) ∩ GLOBAL)``.

    Requires a two-level program (``max_nesting_level <= 1``).
    """
    if graph.resolved.max_nesting_level > 1:
        raise ValueError(
            "solve_gmod_naive handles two-level programs only; "
            "use solve_equation4_reference for nested programs"
        )
    if counter is None:
        counter = OpCounter()
    num_nodes = graph.num_nodes
    global_mask = universe.global_mask
    gmod = [0] * num_nodes
    for source in range(num_nodes):
        visited = [False] * num_nodes
        visited[source] = True
        stack = [source]
        value = imod_plus[source]
        counter.bit_vector_steps += 1
        while stack:
            node = stack.pop()
            if node != source:
                value |= imod_plus[node] & global_mask
                counter.bit_vector_steps += 1
            for succ in graph.successors[node]:
                if not visited[succ]:
                    visited[succ] = True
                    stack.append(succ)
        gmod[source] = value
    return gmod
