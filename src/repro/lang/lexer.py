"""Batched lexer for the CK language.

One compiled master regex classifies the whole source in a single
``finditer`` pass.  Each match swallows any run of whitespace and
comments (the ``skip`` prefix group) together with exactly one token,
so the Python-level loop runs once per *token*, not once per character
— the per-character work all happens inside the regex engine's C loop.
Comments run from ``#`` to end of line; whitespace only separates
tokens.

The scanner's native output is a :class:`TokenStream`: four parallel
lists (dense kind codes, values, lines, columns) plus a trailing EOF
entry.  The parser consumes the stream directly — indexing flat lists
of ints beats attribute access on token objects — and ``Token``
records are materialized only on demand (:func:`tokenize`), for tests
and tools.  Kinds, values, positions, and error messages are identical
to the original character-at-a-time scanner, which survives as the
specification fixture ``tests/lexer_reference.py`` and is asserted
equivalent by the front-end equivalence suite.
"""

from __future__ import annotations

import re
from typing import Iterator, List, NamedTuple, Tuple

from repro.lang.errors import LexError
from repro.lang.tokens import KEYWORDS, KIND_BY_CODE, Token, TokenKind

#: Operator spelling → dense kind code.  Two-character operators are
#: listed first in the master regex alternation, so ``<=`` can never
#: lex as ``<`` ``=``.
_OPERATOR_CODES = {
    ":=": TokenKind.ASSIGN.code,
    "!=": TokenKind.NE.code,
    "<=": TokenKind.LE.code,
    ">=": TokenKind.GE.code,
    "<>": TokenKind.NE.code,  # Pascal-style spelling accepted as a synonym.
    "+": TokenKind.PLUS.code,
    "-": TokenKind.MINUS.code,
    "*": TokenKind.STAR.code,
    "/": TokenKind.SLASH.code,
    "=": TokenKind.EQ.code,
    "<": TokenKind.LT.code,
    ">": TokenKind.GT.code,
    "(": TokenKind.LPAREN.code,
    ")": TokenKind.RPAREN.code,
    "[": TokenKind.LBRACKET.code,
    "]": TokenKind.RBRACKET.code,
    ",": TokenKind.COMMA.code,
    ";": TokenKind.SEMI.code,
}

#: Keyword spelling → dense kind code (the fast-path twin of KEYWORDS).
_KEYWORD_CODES = {word: kind.code for word, kind in KEYWORDS.items()}

#: The master scanner.  Group 1 (``skip``) greedily eats whitespace and
#: comments; the token part is optional so the final match (trailing
#: skip + EOF) and bad-character positions (pure-skip match that stops
#: short of a token) fall out of the same pass.  ``[^\W\d]`` is "word
#: character that is not a digit" — exactly the reference scanner's
#: ``isalpha() or '_'`` start set; ``\w`` continues with
#: ``isalnum() or '_'``.  A digit run immediately followed by a word
#: character (group ``bad``) reproduces the reference scanner's
#: "identifier may not start with a digit" error.
_MASTER = re.compile(
    r"(?P<skip>(?:[ \t\r\n]+|\#[^\n]*)*)"
    r"(?:(?P<word>[^\W\d]\w*)"
    r"|(?P<int>\d+)(?P<bad>[^\W\d])?"
    r"|(?P<op>:=|!=|<=|>=|<>|[-+*/=<>()\[\],;]))?"
)

# Group indices in _MASTER, in match.lastindex terms.  lastindex is the
# highest-numbered group that participated in the match, so a plain
# integer token reports _INT_G while a malformed one reports _BAD_G.
_SKIP_G = 1
_WORD_G = 2
_INT_G = 3
_BAD_G = 4
_OP_G = 5

_IDENT_CODE = TokenKind.IDENT.code
_INT_CODE = TokenKind.INT.code
_EOF_CODE = TokenKind.EOF.code


class TokenStream(NamedTuple):
    """The scanner's native output: four parallel lists, one entry per
    token including the trailing EOF (whose value is ``None``).

    ``codes[i]`` is ``KIND_BY_CODE`` index of token ``i``'s kind;
    ``values[i]`` / ``lines[i]`` / ``columns[i]`` match the fields of
    the corresponding :class:`Token`.
    """

    codes: List[int]
    values: List[object]
    lines: List[int]
    columns: List[int]

    def __len__(self) -> int:
        return len(self.codes)

    def token(self, index: int) -> Token:
        """Materialize the :class:`Token` record for entry ``index``."""
        return Token(
            KIND_BY_CODE[self.codes[index]],
            self.values[index],
            self.lines[index],
            self.columns[index],
        )


def tokenize_stream(source: str) -> TokenStream:
    """Scan ``source`` into a :class:`TokenStream` (ends with EOF)."""
    codes: List[int] = []
    values: List[object] = []
    lines: List[int] = []
    columns: List[int] = []
    append_code = codes.append
    append_value = values.append
    append_line = lines.append
    append_column = columns.append
    keyword_get = _KEYWORD_CODES.get
    operators = _OPERATOR_CODES
    ident_code = _IDENT_CODE
    int_code = _INT_CODE
    line = 1
    line_start = 0  # Offset of the first character of the current line.
    n = len(source)
    for match in _MASTER.finditer(source):
        group_index = match.lastindex
        if group_index == _WORD_G:
            skip = match.group(1)
            if skip and "\n" in skip:
                line += skip.count("\n")
                line_start = match.start(1) + skip.rindex("\n") + 1
            text = match.group(2)
            append_code(keyword_get(text, ident_code))
            append_value(text)
            append_line(line)
            append_column(match.start(2) - line_start + 1)
        elif group_index == _OP_G:
            skip = match.group(1)
            if skip and "\n" in skip:
                line += skip.count("\n")
                line_start = match.start(1) + skip.rindex("\n") + 1
            text = match.group(5)
            append_code(operators[text])
            append_value(text)
            append_line(line)
            append_column(match.start(5) - line_start + 1)
        elif group_index == _INT_G:
            skip = match.group(1)
            if skip and "\n" in skip:
                line += skip.count("\n")
                line_start = match.start(1) + skip.rindex("\n") + 1
            append_code(int_code)
            append_value(int(match.group(3)))
            append_line(line)
            append_column(match.start(3) - line_start + 1)
        elif group_index == _BAD_G:
            skip = match.group(1)
            if skip and "\n" in skip:
                line += skip.count("\n")
                line_start = match.start(1) + skip.rindex("\n") + 1
            raise LexError(
                "identifier may not start with a digit",
                line,
                match.start(3) - line_start + 1,
            )
        else:
            # Pure-skip match: either we reached EOF cleanly or the
            # regex stopped in front of a character no token starts
            # with.  (The skip group always participates, so this is
            # the only no-token shape.)
            skip = match.group(1)
            if skip and "\n" in skip:
                line += skip.count("\n")
                line_start = match.start(1) + skip.rindex("\n") + 1
            end = match.end()
            if end != n:
                raise LexError(
                    "unexpected character %r" % source[end],
                    line,
                    end - line_start + 1,
                )
            break
    append_code(_EOF_CODE)
    append_value(None)
    append_line(line)
    append_column(n - line_start + 1)
    return TokenStream(codes, values, lines, columns)


def tokenize(source: str) -> List[Token]:
    """Tokenize ``source`` fully, returning a list ending with EOF."""
    codes, values, lines, columns = tokenize_stream(source)
    kinds = KIND_BY_CODE
    return [
        Token(kinds[code], value, line, column)
        for code, value, line, column in zip(codes, values, lines, columns)
    ]


def tokenize_with_codes(source: str) -> Tuple[List[Token], List[int]]:
    """Tokenize ``source``; returns ``(tokens, kind codes)``.

    Compatibility shim over :func:`tokenize_stream` for callers that
    want materialized :class:`Token` records alongside the dense codes.
    """
    stream = tokenize_stream(source)
    kinds = KIND_BY_CODE
    tokens = [
        Token(kinds[code], value, line, column)
        for code, value, line, column in zip(
            stream.codes, stream.values, stream.lines, stream.columns
        )
    ]
    return tokens, list(stream.codes)


def iter_tokens(source: str) -> Iterator[Token]:
    """Yield tokens from ``source``, ending with a single EOF token.

    Retained for API compatibility with the original streaming scanner;
    the batched tokenizer produces the full stream up front, so this is
    an iterator over :func:`tokenize`.
    """
    return iter(tokenize(source))
