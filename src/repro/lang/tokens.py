"""Token kinds and the token record for the CK language."""

from __future__ import annotations

import enum
from dataclasses import dataclass


class TokenKind(enum.Enum):
    """Every distinct token kind produced by the lexer.

    Each member additionally carries a dense integer ``code`` (assigned
    below, in definition order).  The parser's inner loops compare these
    plain ints instead of enum members — an int equality check skips the
    enum identity machinery and lets token-kind tables be indexed
    dictionaries keyed by small ints.  ``value`` remains the display
    spelling used in diagnostics, so error messages are unchanged.
    """

    # Literals and names.
    INT = "int"
    IDENT = "ident"

    # Keywords.
    PROGRAM = "program"
    GLOBAL = "global"
    LOCAL = "local"
    ARRAY = "array"
    PROC = "proc"
    BEGIN = "begin"
    END = "end"
    CALL = "call"
    IF = "if"
    THEN = "then"
    ELSE = "else"
    WHILE = "while"
    DO = "do"
    FOR = "for"
    TO = "to"
    RETURN = "return"
    READ = "read"
    PRINT = "print"
    AND = "and"
    OR = "or"
    NOT = "not"
    DIV = "div"
    MOD = "mod"

    # Operators and punctuation.
    ASSIGN = ":="
    PLUS = "+"
    MINUS = "-"
    STAR = "*"
    SLASH = "/"
    EQ = "="
    NE = "!="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    LPAREN = "("
    RPAREN = ")"
    LBRACKET = "["
    RBRACKET = "]"
    COMMA = ","
    SEMI = ";"

    # End of input.
    EOF = "eof"


#: Dense int code per kind, in definition order.  ``TokenKind.X.code``
#: is also set on each member for convenience.
KIND_CODE = {kind: index for index, kind in enumerate(TokenKind)}
for _kind, _code in KIND_CODE.items():
    _kind.code = _code
del _kind, _code

#: Inverse table: ``KIND_BY_CODE[code]`` is the kind whose ``.code`` is
#: ``code`` (definition order, so a plain list indexed by code).
KIND_BY_CODE = list(TokenKind)

#: Mapping from keyword spelling to its token kind.
KEYWORDS = {
    kind.value: kind
    for kind in (
        TokenKind.PROGRAM,
        TokenKind.GLOBAL,
        TokenKind.LOCAL,
        TokenKind.ARRAY,
        TokenKind.PROC,
        TokenKind.BEGIN,
        TokenKind.END,
        TokenKind.CALL,
        TokenKind.IF,
        TokenKind.THEN,
        TokenKind.ELSE,
        TokenKind.WHILE,
        TokenKind.DO,
        TokenKind.FOR,
        TokenKind.TO,
        TokenKind.RETURN,
        TokenKind.READ,
        TokenKind.PRINT,
        TokenKind.AND,
        TokenKind.OR,
        TokenKind.NOT,
        TokenKind.DIV,
        TokenKind.MOD,
    )
}


@dataclass(frozen=True, slots=True)
class Token:
    """A single lexeme with its source position.

    ``value`` is the integer value for :data:`TokenKind.INT` tokens, the
    identifier spelling for :data:`TokenKind.IDENT` tokens, and the fixed
    spelling for everything else.
    """

    kind: TokenKind
    value: object
    line: int
    column: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "Token(%s, %r, %d:%d)" % (self.kind.name, self.value, self.line, self.column)
