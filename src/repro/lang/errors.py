"""Exception hierarchy for the CK language front end and interpreter."""

from __future__ import annotations


class CkError(Exception):
    """Base class for all CK language errors.

    Carries an optional source position ``(line, column)`` so callers can
    report precise diagnostics.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.message = message
        self.line = line
        self.column = column
        super().__init__(self._format())

    def _format(self) -> str:
        if self.line:
            return "line %d, col %d: %s" % (self.line, self.column, self.message)
        return self.message


class LexError(CkError):
    """Raised when the lexer meets a character it cannot tokenize."""


class ParseError(CkError):
    """Raised when the parser meets an unexpected token."""


class SemanticError(CkError):
    """Raised by semantic analysis: undeclared names, arity mismatches,
    duplicate declarations, misuse of arrays, and similar."""


class RuntimeCkError(CkError):
    """Raised by the interpreter: division by zero, subscript out of
    range, step/recursion budget exceeded, and similar."""
