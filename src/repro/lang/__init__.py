"""The CK mini-language: the substrate the side-effect analysis consumes.

CK is a small Pascal-flavoured procedural language with the features the
Cooper-Kennedy analysis cares about:

* procedures with **by-reference** parameters,
* a single program-level **global** scope,
* optional Pascal-style **nested** procedure declarations,
* scalar integer variables and multi-dimensional integer arrays.

The package provides a lexer, a recursive-descent parser, semantic
analysis (scopes, symbols, nesting levels), a pretty-printer, a
programmatic AST builder, and a tracing interpreter used as a dynamic
soundness oracle for the analysis.
"""

from repro.lang.errors import CkError, LexError, ParseError, SemanticError, RuntimeCkError
from repro.lang.lexer import tokenize
from repro.lang.parser import parse_program
from repro.lang.semantic import analyze
from repro.lang.pretty import pretty
from repro.lang.builder import ProgramBuilder
from repro.lang.interp import Interpreter, TraceResult

__all__ = [
    "CkError",
    "LexError",
    "ParseError",
    "SemanticError",
    "RuntimeCkError",
    "tokenize",
    "parse_program",
    "analyze",
    "pretty",
    "ProgramBuilder",
    "Interpreter",
    "TraceResult",
]
