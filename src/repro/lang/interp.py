"""Tracing interpreter for CK programs.

The interpreter is the *dynamic soundness oracle* for the side-effect
analysis: every scalar cell and array carries read/write epochs, and
around each executed call the interpreter snapshots which variables
visible in the caller were touched during the callee's execution.  The
resulting per-call-site observed ``MOD``/``USE`` sets must be subsets of
the statically computed ones — the property the fuzz tests check.

By-reference semantics match the analysis model: a bare variable actual
binds the formal to the caller's storage; a subscripted actual binds to
an element view of the caller's array; any other expression is passed
by value into a fresh cell (no side-effect channel).

Execution is budgeted (``max_steps``, ``max_depth``).  Exhausting a
budget or hitting a runtime fault does not raise — the
:class:`TraceResult` records the outcome, and effects observed up to
the stop are still valid observations (they occurred on a genuine
execution prefix).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

from repro.lang.errors import RuntimeCkError
from repro.lang.nodes import (
    Assign,
    BinOp,
    CallStmt,
    Expr,
    For,
    If,
    IntLit,
    Print,
    Read,
    Return,
    Stmt,
    UnOp,
    VarRef,
    While,
)
from repro.lang.symbols import CallSite, ProcSymbol, ResolvedProgram, VarSymbol


class _Halt(Exception):
    """Internal: stop execution (budget exhausted or runtime fault)."""

    def __init__(self, reason: str):
        self.reason = reason
        super().__init__(reason)


class _ReturnSignal(Exception):
    """Internal: unwind to the current procedure-body boundary."""


class Cell:
    """A scalar storage location with read/write epoch stamps."""

    __slots__ = ("value", "write_epoch", "read_epoch")

    def __init__(self, value: int = 0):
        self.value = value
        self.write_epoch = 0
        self.read_epoch = 0

    def load(self, epoch: int) -> int:
        self.read_epoch = epoch
        return self.value

    def store(self, value: int, epoch: int) -> None:
        self.value = value
        self.write_epoch = epoch

    def touched_since(self, epoch: int) -> bool:
        return self.write_epoch > epoch

    def read_since(self, epoch: int) -> bool:
        return self.read_epoch > epoch


class ArrayValue:
    """An array with whole-object read/write epoch stamps plus
    per-element write/read epochs (the §6 element-level oracle)."""

    __slots__ = ("dims", "data", "write_epoch", "read_epoch",
                 "element_write_epoch", "element_read_epoch")

    def __init__(self, dims: Sequence[int]):
        self.dims = tuple(dims)
        size = 1
        for dim in self.dims:
            size *= dim
        self.data = [0] * size
        self.write_epoch = 0
        self.read_epoch = 0
        self.element_write_epoch: Dict[int, int] = {}
        self.element_read_epoch: Dict[int, int] = {}

    def flat_index(self, indices: Sequence[int]) -> int:
        if len(indices) != len(self.dims):
            raise RuntimeCkError(
                "array of rank %d subscripted with %d indices"
                % (len(self.dims), len(indices))
            )
        flat = 0
        for index, dim in zip(indices, self.dims):
            if not 0 <= index < dim:
                raise RuntimeCkError(
                    "subscript %d out of range [0, %d)" % (index, dim)
                )
            flat = flat * dim + index
        return flat

    def load(self, indices: Sequence[int], epoch: int) -> int:
        self.read_epoch = epoch
        flat = self.flat_index(indices)
        self.element_read_epoch[flat] = epoch
        return self.data[flat]

    def store(self, indices: Sequence[int], value: int, epoch: int) -> None:
        self.write_epoch = epoch
        flat = self.flat_index(indices)
        self.element_write_epoch[flat] = epoch
        self.data[flat] = value

    def touched_since(self, epoch: int) -> bool:
        return self.write_epoch > epoch

    def read_since(self, epoch: int) -> bool:
        return self.read_epoch > epoch

    def unflatten(self, flat: int) -> tuple:
        """Invert :meth:`flat_index`."""
        indices = []
        for dim in reversed(self.dims):
            indices.append(flat % dim)
            flat //= dim
        return tuple(reversed(indices))

    def elements_written_since(self, epoch: int):
        """Multi-indices of elements written after ``epoch``."""
        return [
            self.unflatten(flat)
            for flat, stamp in self.element_write_epoch.items()
            if stamp > epoch
        ]

    def elements_read_since(self, epoch: int):
        return [
            self.unflatten(flat)
            for flat, stamp in self.element_read_epoch.items()
            if stamp > epoch
        ]


class ElementRef:
    """A scalar view of one array element (a subscripted actual)."""

    __slots__ = ("array", "flat")

    def __init__(self, array: ArrayValue, flat: int):
        self.array = array
        self.flat = flat

    def load(self, epoch: int) -> int:
        self.array.read_epoch = epoch
        self.array.element_read_epoch[self.flat] = epoch
        return self.array.data[self.flat]

    def store(self, value: int, epoch: int) -> None:
        self.array.write_epoch = epoch
        self.array.element_write_epoch[self.flat] = epoch
        self.array.data[self.flat] = value

    def touched_since(self, epoch: int) -> bool:
        return self.array.write_epoch > epoch

    def read_since(self, epoch: int) -> bool:
        return self.array.read_epoch > epoch


class _Activation:
    """One procedure activation: storage map plus the static link."""

    __slots__ = ("proc", "env", "access_link")

    def __init__(self, proc: ProcSymbol, access_link: Optional["_Activation"]):
        self.proc = proc
        self.env: Dict[VarSymbol, object] = {}
        self.access_link = access_link

    def resolve(self, symbol: VarSymbol) -> object:
        """Find the storage for ``symbol`` via the static-link chain."""
        activation: Optional[_Activation] = self
        while activation is not None:
            if activation.proc is symbol.proc:
                return activation.env[symbol]
            activation = activation.access_link
        raise RuntimeCkError("no activation holds %s" % symbol.qualified_name)


@dataclass(frozen=True)
class ElementObservation:
    """One array element touched during one execution of a call site.

    ``entry_values`` holds the scalar value each formal received at the
    observed call (``None`` for array bindings) — what a regular
    section's symbolic ``FORMAL`` subscripts concretise to for this
    occurrence.
    """

    site_id: int
    symbol: VarSymbol
    indices: tuple
    kind: str  # "mod" or "use".
    entry_values: tuple


@dataclass
class TraceResult:
    """Everything observed during one program execution."""

    completed: bool
    reason: str
    steps: int
    output: List[int]
    #: site_id -> variables visible in the caller observed modified by the call.
    observed_mod: Dict[int, Set[VarSymbol]]
    #: site_id -> variables visible in the caller observed used by the call.
    observed_use: Dict[int, Set[VarSymbol]]
    #: site_id -> number of times the site was executed.
    call_counts: Dict[int, int] = field(default_factory=dict)
    #: Element-level MOD/USE observations (the §6 oracle).
    element_observations: List[ElementObservation] = field(default_factory=list)


class Interpreter:
    """Executes a resolved CK program with side-effect tracing.

    Parameters
    ----------
    resolved:
        The program, after semantic analysis.
    inputs:
        Values consumed by ``read`` statements; 0 once exhausted.
    max_steps / max_depth:
        Execution budgets; exceeding one stops the run gracefully.
    trace_calls:
        Set to False to skip the per-call visibility snapshots (faster;
        used by benchmarks that only need the final state).
    """

    def __init__(
        self,
        resolved: ResolvedProgram,
        inputs: Optional[Sequence[int]] = None,
        max_steps: int = 100_000,
        max_depth: int = 200,
        trace_calls: bool = True,
        element_trace_limit: int = 200_000,
    ):
        self.resolved = resolved
        self.inputs = list(inputs or [])
        self.input_pos = 0
        self.max_steps = max_steps
        self.max_depth = max_depth
        self.trace_calls = trace_calls
        self.element_trace_limit = element_trace_limit
        self.steps = 0
        self.epoch = 1
        self.depth = 0
        self.output: List[int] = []
        self.observed_mod: Dict[int, Set[VarSymbol]] = {}
        self.observed_use: Dict[int, Set[VarSymbol]] = {}
        self.call_counts: Dict[int, int] = {}
        self.element_observations: List[ElementObservation] = []
        self.sites_by_id = {site.site_id: site for site in resolved.call_sites}
        # Visible-variable lists per caller are snapshotted around calls;
        # cache them since they never change.
        self._visible_cache: Dict[int, List[VarSymbol]] = {}

    # -- bookkeeping ----------------------------------------------------------

    def _tick(self) -> None:
        self.steps += 1
        if self.steps > self.max_steps:
            raise _Halt("step budget exhausted")

    def _next_epoch(self) -> int:
        self.epoch += 1
        return self.epoch

    def _visible(self, proc: ProcSymbol) -> List[VarSymbol]:
        cached = self._visible_cache.get(proc.pid)
        if cached is None:
            cached = list(self.resolved.visible_variables(proc).values())
            self._visible_cache[proc.pid] = cached
        return cached

    def _extant_snapshot(self, activation: _Activation) -> List[tuple]:
        """Every (symbol, storage) whose instance is live in the given
        activation: the whole static-link chain, not just the nameable
        set — an inner declaration shadows an outer *name*, but the
        outer instance can still be modified through aliases, and the
        soundness oracle must observe that."""
        snapshot = []
        link: Optional[_Activation] = activation
        while link is not None:
            snapshot.extend(link.env.items())
            link = link.access_link
        return snapshot

    def _fresh_storage(self, symbol: VarSymbol) -> object:
        if symbol.is_array:
            return ArrayValue(symbol.dims)
        return Cell(0)

    # -- expression evaluation ---------------------------------------------------

    def _eval(self, expr: Expr, activation: _Activation) -> int:
        self._tick()
        if isinstance(expr, IntLit):
            return expr.value
        if isinstance(expr, VarRef):
            return self._load(expr, activation)
        if isinstance(expr, BinOp):
            if expr.op == "and":
                left = self._eval(expr.left, activation)
                if left == 0:
                    return 0
                return 1 if self._eval(expr.right, activation) != 0 else 0
            if expr.op == "or":
                left = self._eval(expr.left, activation)
                if left != 0:
                    return 1
                return 1 if self._eval(expr.right, activation) != 0 else 0
            left = self._eval(expr.left, activation)
            right = self._eval(expr.right, activation)
            return self._apply(expr.op, left, right)
        if isinstance(expr, UnOp):
            operand = self._eval(expr.operand, activation)
            if expr.op == "-":
                return -operand
            if expr.op == "not":
                return 1 if operand == 0 else 0
            raise RuntimeCkError("unknown unary operator %r" % expr.op)
        raise RuntimeCkError("unknown expression node %r" % (expr,))

    def _apply(self, op: str, left: int, right: int) -> int:
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op in ("/", "div"):
            if right == 0:
                raise _Halt("division by zero")
            return left // right
        if op == "mod":
            if right == 0:
                raise _Halt("modulo by zero")
            return left % right
        if op == "=":
            return 1 if left == right else 0
        if op == "!=":
            return 1 if left != right else 0
        if op == "<":
            return 1 if left < right else 0
        if op == "<=":
            return 1 if left <= right else 0
        if op == ">":
            return 1 if left > right else 0
        if op == ">=":
            return 1 if left >= right else 0
        raise RuntimeCkError("unknown operator %r" % op)

    def _load(self, ref: VarRef, activation: _Activation) -> int:
        storage = activation.resolve(ref.symbol)
        epoch = self._next_epoch()
        if ref.indices:
            indices = [self._eval(index, activation) for index in ref.indices]
            if not isinstance(storage, ArrayValue):
                raise _Halt("subscripting a non-array value %r" % ref.name)
            try:
                return storage.load(indices, epoch)
            except RuntimeCkError as exc:
                raise _Halt(exc.message)
        if isinstance(storage, (Cell, ElementRef)):
            return storage.load(epoch)
        raise _Halt("array %r used where a scalar is required" % ref.name)

    def _store(self, ref: VarRef, value: int, activation: _Activation) -> None:
        storage = activation.resolve(ref.symbol)
        epoch = self._next_epoch()
        if ref.indices:
            indices = [self._eval(index, activation) for index in ref.indices]
            if not isinstance(storage, ArrayValue):
                raise _Halt("subscripting a non-array value %r" % ref.name)
            try:
                storage.store(indices, value, epoch)
            except RuntimeCkError as exc:
                raise _Halt(exc.message)
            return
        if isinstance(storage, (Cell, ElementRef)):
            storage.store(value, epoch)
            return
        raise _Halt("cannot assign to whole array %r" % ref.name)

    # -- statement execution -------------------------------------------------------

    def _exec_body(self, body: List[Stmt], activation: _Activation) -> None:
        for stmt in body:
            self._exec(stmt, activation)

    def _exec(self, stmt: Stmt, activation: _Activation) -> None:
        self._tick()
        if isinstance(stmt, Assign):
            value = self._eval(stmt.value, activation)
            self._store(stmt.target, value, activation)
        elif isinstance(stmt, CallStmt):
            self._exec_call(stmt, activation)
        elif isinstance(stmt, If):
            if self._eval(stmt.cond, activation) != 0:
                self._exec_body(stmt.then_body, activation)
            else:
                self._exec_body(stmt.else_body, activation)
        elif isinstance(stmt, While):
            while self._eval(stmt.cond, activation) != 0:
                self._exec_body(stmt.body, activation)
        elif isinstance(stmt, For):
            lo = self._eval(stmt.lo, activation)
            hi = self._eval(stmt.hi, activation)
            counter = lo
            while counter <= hi:
                self._store(stmt.var, counter, activation)
                self._exec_body(stmt.body, activation)
                counter += 1
        elif isinstance(stmt, Return):
            raise _ReturnSignal()
        elif isinstance(stmt, Read):
            if self.input_pos < len(self.inputs):
                value = self.inputs[self.input_pos]
                self.input_pos += 1
            else:
                value = 0
            self._store(stmt.target, value, activation)
        elif isinstance(stmt, Print):
            for expr in stmt.values:
                self.output.append(self._eval(expr, activation))
        else:
            raise RuntimeCkError("unknown statement node %r" % (stmt,))

    # -- calls -------------------------------------------------------------------

    def _bind_argument(self, arg: Expr, activation: _Activation) -> object:
        """Produce the storage a formal gets bound to for actual ``arg``."""
        if isinstance(arg, VarRef):
            storage = activation.resolve(arg.symbol)
            if arg.indices:
                indices = [self._eval(index, activation) for index in arg.indices]
                if not isinstance(storage, ArrayValue):
                    raise _Halt("subscripting a non-array value %r" % arg.name)
                try:
                    flat = storage.flat_index(indices)
                except RuntimeCkError as exc:
                    raise _Halt(exc.message)
                return ElementRef(storage, flat)
            return storage
        value = self._eval(arg, activation)
        return Cell(value)

    def _static_link(self, callee: ProcSymbol, activation: _Activation) -> Optional[_Activation]:
        """The activation of the callee's lexical parent, via the
        caller's static-link chain (standard nested-procedure display
        discipline)."""
        link: Optional[_Activation] = activation
        while link is not None:
            if link.proc is callee.parent:
                return link
            link = link.access_link
        raise RuntimeCkError(
            "no activation of %s (lexical parent of %s) on static chain"
            % (callee.parent.qualified_name, callee.qualified_name)
        )

    def _exec_call(self, stmt: CallStmt, activation: _Activation) -> None:
        callee: ProcSymbol = stmt.proc
        self.depth += 1
        if self.depth > self.max_depth:
            self.depth -= 1
            raise _Halt("call depth budget exhausted")
        try:
            # Evaluate argument storages in the caller before
            # snapshotting, so argument evaluation itself is not
            # attributed to the callee.
            storages = [self._bind_argument(arg, activation) for arg in stmt.args]
            snapshot = None
            epoch0 = 0
            if self.trace_calls:
                snapshot = self._extant_snapshot(activation)
                epoch0 = self.epoch
                self.call_counts[stmt.site_id] = self.call_counts.get(stmt.site_id, 0) + 1
            callee_activation = _Activation(callee, self._static_link(callee, activation))
            for formal, storage in zip(callee.formals, storages):
                callee_activation.env[formal] = storage
            for local in callee.locals:
                callee_activation.env[local] = self._fresh_storage(local)
            entry_values = None
            if snapshot is not None:
                entry_values = tuple(
                    storage.array.data[storage.flat]
                    if isinstance(storage, ElementRef)
                    else (storage.value if isinstance(storage, Cell) else None)
                    for storage in storages
                )
            try:
                self._exec_body(callee.body, callee_activation)
            except _ReturnSignal:
                pass
            finally:
                # Record what was touched even if the callee halted.
                if snapshot is not None:
                    mods = self.observed_mod.setdefault(stmt.site_id, set())
                    uses = self.observed_use.setdefault(stmt.site_id, set())
                    for symbol, storage in snapshot:
                        if storage.touched_since(epoch0):
                            mods.add(symbol)
                        if storage.read_since(epoch0):
                            uses.add(symbol)
                        if (
                            isinstance(storage, ArrayValue)
                            and len(self.element_observations)
                            < self.element_trace_limit
                        ):
                            for indices in storage.elements_written_since(epoch0):
                                self.element_observations.append(
                                    ElementObservation(
                                        site_id=stmt.site_id,
                                        symbol=symbol,
                                        indices=indices,
                                        kind="mod",
                                        entry_values=entry_values,
                                    )
                                )
                            for indices in storage.elements_read_since(epoch0):
                                self.element_observations.append(
                                    ElementObservation(
                                        site_id=stmt.site_id,
                                        symbol=symbol,
                                        indices=indices,
                                        kind="use",
                                        entry_values=entry_values,
                                    )
                                )
        finally:
            self.depth -= 1

    # -- driver --------------------------------------------------------------------

    def run(self) -> TraceResult:
        """Execute the program from the main body and collect the trace."""
        main = self.resolved.main
        root = _Activation(main, None)
        for symbol in main.scope.values():
            root.env[symbol] = self._fresh_storage(symbol)
        completed = True
        reason = "completed"
        try:
            try:
                self._exec_body(main.body, root)
            except _ReturnSignal:
                pass
        except _Halt as halt:
            completed = False
            reason = halt.reason
        return TraceResult(
            completed=completed,
            reason=reason,
            steps=self.steps,
            output=self.output,
            observed_mod=self.observed_mod,
            observed_use=self.observed_use,
            call_counts=self.call_counts,
            element_observations=self.element_observations,
        )


def run_program(resolved: ResolvedProgram, inputs: Optional[Sequence[int]] = None,
                max_steps: int = 100_000, max_depth: int = 200) -> TraceResult:
    """Convenience wrapper: build an :class:`Interpreter` and run it."""
    interpreter = Interpreter(resolved, inputs=inputs, max_steps=max_steps, max_depth=max_depth)
    return interpreter.run()
