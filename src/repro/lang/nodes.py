"""AST node definitions for the CK language.

All nodes are plain dataclasses, declared with ``slots=True`` so each
instance is a fixed-layout object rather than a dict-backed one —
roughly 40% smaller and measurably faster to construct and to access,
which matters when a 10k-procedure program allocates millions of
nodes.  Source positions (``line``/``column``)
are carried on declarations, statements, and variable references — the
places diagnostics point at.

Naming note: the module is called ``nodes`` (not ``ast``) to avoid any
shadowing confusion with the standard library.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass(slots=True)
class IntLit:
    """Integer literal."""

    value: int
    line: int = 0
    column: int = 0


@dataclass(slots=True)
class VarRef:
    """Reference to a variable, optionally subscripted.

    ``indices`` is empty for a scalar reference or a whole-array
    reference; semantic analysis distinguishes those by the declared
    shape of the variable.  After semantic analysis, ``symbol`` points
    at the resolved :class:`repro.lang.symbols.VarSymbol`.
    """

    name: str
    indices: List["Expr"] = field(default_factory=list)
    line: int = 0
    column: int = 0
    symbol: object = None  # VarSymbol, filled in by semantic analysis.


@dataclass(slots=True)
class BinOp:
    """Binary operation.  ``op`` is one of ``+ - * / div mod = != < <= >
    >= and or``."""

    op: str
    left: "Expr"
    right: "Expr"
    line: int = 0
    column: int = 0


@dataclass(slots=True)
class UnOp:
    """Unary operation.  ``op`` is ``-`` or ``not``."""

    op: str
    operand: "Expr"
    line: int = 0
    column: int = 0


Expr = Union[IntLit, VarRef, BinOp, UnOp]


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass(slots=True)
class Assign:
    """``target := value``.  ``target`` may be subscripted."""

    target: VarRef
    value: Expr
    line: int = 0
    column: int = 0


@dataclass(slots=True)
class CallStmt:
    """``call callee(args...)``.

    After semantic analysis ``proc`` points at the resolved
    :class:`repro.lang.symbols.ProcSymbol` and ``site_id`` is a unique
    call-site number (dense, program-wide).
    """

    callee: str
    args: List[Expr] = field(default_factory=list)
    line: int = 0
    column: int = 0
    proc: object = None  # ProcSymbol, filled in by semantic analysis.
    site_id: int = -1  # Dense call-site id, filled in by semantic analysis.


@dataclass(slots=True)
class If:
    """``if cond then ... [else ...] end``."""

    cond: Expr
    then_body: List["Stmt"] = field(default_factory=list)
    else_body: List["Stmt"] = field(default_factory=list)
    line: int = 0
    column: int = 0


@dataclass(slots=True)
class While:
    """``while cond do ... end``."""

    cond: Expr
    body: List["Stmt"] = field(default_factory=list)
    line: int = 0
    column: int = 0


@dataclass(slots=True)
class For:
    """``for var := lo to hi do ... end`` — ``var`` must be scalar."""

    var: VarRef
    lo: Expr
    hi: Expr
    body: List["Stmt"] = field(default_factory=list)
    line: int = 0
    column: int = 0


@dataclass(slots=True)
class Return:
    """``return`` — exits the current procedure."""

    line: int = 0
    column: int = 0


@dataclass(slots=True)
class Read:
    """``read target`` — assigns the next input value to ``target``."""

    target: VarRef = None
    line: int = 0
    column: int = 0


@dataclass(slots=True)
class Print:
    """``print e1, e2, ...`` — appends evaluated values to the output."""

    values: List[Expr] = field(default_factory=list)
    line: int = 0
    column: int = 0


Stmt = Union[Assign, CallStmt, If, While, For, Return, Read, Print]


# ---------------------------------------------------------------------------
# Declarations
# ---------------------------------------------------------------------------


@dataclass(slots=True)
class VarDecl:
    """A variable declaration; ``dims`` is ``()`` for scalars."""

    name: str
    dims: Tuple[int, ...] = ()
    line: int = 0
    column: int = 0

    @property
    def is_array(self) -> bool:
        return bool(self.dims)


@dataclass(slots=True)
class ProcDecl:
    """A procedure declaration, possibly with nested procedures."""

    name: str
    params: List[str] = field(default_factory=list)
    locals: List[VarDecl] = field(default_factory=list)
    nested: List["ProcDecl"] = field(default_factory=list)
    body: List[Stmt] = field(default_factory=list)
    line: int = 0
    column: int = 0
    #: Structural fingerprint hashed from this procedure's token span
    #: at parse time (nested bodies replaced by name/arity markers);
    #: ``b""`` for ASTs built programmatically rather than parsed.
    token_hash: bytes = b""


@dataclass(slots=True)
class Program:
    """A whole CK program.

    The main body is modelled during analysis as a zero-parameter
    procedure named after the program, at nesting level 0.
    """

    name: str
    globals: List[VarDecl] = field(default_factory=list)
    procs: List[ProcDecl] = field(default_factory=list)
    body: List[Stmt] = field(default_factory=list)
    line: int = 0
    column: int = 0
    #: Token-span fingerprint of the main body (see ProcDecl.token_hash).
    token_hash: bytes = b""


def walk_statements(body: List[Stmt]):
    """Yield every statement in ``body``, recursing into compound
    statements (but *not* into nested procedure declarations — those are
    not statements)."""
    for stmt in body:
        yield stmt
        if isinstance(stmt, If):
            yield from walk_statements(stmt.then_body)
            yield from walk_statements(stmt.else_body)
        elif isinstance(stmt, While):
            yield from walk_statements(stmt.body)
        elif isinstance(stmt, For):
            yield from walk_statements(stmt.body)


def walk_expressions(stmt: Stmt):
    """Yield every expression appearing directly in ``stmt`` (not in
    nested statements)."""

    def expand(expr: Expr):
        yield expr
        if isinstance(expr, BinOp):
            yield from expand(expr.left)
            yield from expand(expr.right)
        elif isinstance(expr, UnOp):
            yield from expand(expr.operand)
        elif isinstance(expr, VarRef):
            for index in expr.indices:
                yield from expand(index)

    if isinstance(stmt, Assign):
        yield from expand(stmt.target)
        yield from expand(stmt.value)
    elif isinstance(stmt, CallStmt):
        for arg in stmt.args:
            yield from expand(arg)
    elif isinstance(stmt, If):
        yield from expand(stmt.cond)
    elif isinstance(stmt, While):
        yield from expand(stmt.cond)
    elif isinstance(stmt, For):
        yield from expand(stmt.var)
        yield from expand(stmt.lo)
        yield from expand(stmt.hi)
    elif isinstance(stmt, Read):
        yield from expand(stmt.target)
    elif isinstance(stmt, Print):
        for value in stmt.values:
            yield from expand(value)


def walk_procs(program: Program):
    """Yield every :class:`ProcDecl` in ``program`` in declaration
    order, outer before inner."""

    def expand(procs: List[ProcDecl]):
        for proc in procs:
            yield proc
            yield from expand(proc.nested)

    yield from expand(program.procs)
