"""Fluent programmatic construction of CK programs.

The random workload generator and many tests build programs directly
rather than via source text.  :class:`ProgramBuilder` produces a raw
:class:`~repro.lang.nodes.Program`; call
:func:`repro.lang.semantic.analyze` (or :meth:`ProgramBuilder.resolve`)
to obtain the resolved form the analyses consume.

Example::

    builder = ProgramBuilder("demo")
    builder.add_global("g")
    with builder.proc("p", ["x"]) as p:
        p.assign("x", b.add(b.var("g"), b.lit(1)))
        p.call("q", [b.var("x")])
    with builder.proc("q", ["u"]) as q:
        q.assign("g", b.var("u"))
    builder.main_call("p", [b.var("g")])
    resolved = builder.resolve()
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

from repro.lang.nodes import (
    Assign,
    BinOp,
    CallStmt,
    Expr,
    For,
    If,
    IntLit,
    Print,
    ProcDecl,
    Program,
    Read,
    Return,
    Stmt,
    UnOp,
    VarDecl,
    VarRef,
    While,
)

ExprLike = Union[Expr, int, str]


def _to_expr(value: ExprLike) -> Expr:
    """Coerce ints to literals and strings to scalar variable refs."""
    if isinstance(value, int):
        return IntLit(value)
    if isinstance(value, str):
        return VarRef(value)
    return value


# -- expression helpers (module-level, usable without a builder) -------------


def lit(value: int) -> IntLit:
    return IntLit(value)


def var(name: str, *indices: ExprLike) -> VarRef:
    return VarRef(name, [_to_expr(i) for i in indices])


def binop(op: str, left: ExprLike, right: ExprLike) -> BinOp:
    return BinOp(op, _to_expr(left), _to_expr(right))


def add(left: ExprLike, right: ExprLike) -> BinOp:
    return binop("+", left, right)


def sub(left: ExprLike, right: ExprLike) -> BinOp:
    return binop("-", left, right)


def mul(left: ExprLike, right: ExprLike) -> BinOp:
    return binop("*", left, right)


def lt(left: ExprLike, right: ExprLike) -> BinOp:
    return binop("<", left, right)


def eq(left: ExprLike, right: ExprLike) -> BinOp:
    return binop("=", left, right)


def neg(operand: ExprLike) -> UnOp:
    return UnOp("-", _to_expr(operand))


class BlockBuilder:
    """Builds a statement list (a procedure body or a nested block)."""

    def __init__(self, statements: List[Stmt]):
        self.statements = statements

    def assign(self, target: Union[str, VarRef], value: ExprLike) -> "BlockBuilder":
        target_ref = var(target) if isinstance(target, str) else target
        self.statements.append(Assign(target=target_ref, value=_to_expr(value)))
        return self

    def call(self, callee: str, args: Sequence[ExprLike] = ()) -> "BlockBuilder":
        self.statements.append(CallStmt(callee=callee, args=[_to_expr(a) for a in args]))
        return self

    def if_(self, cond: ExprLike) -> "IfBuilder":
        stmt = If(cond=_to_expr(cond))
        self.statements.append(stmt)
        return IfBuilder(stmt)

    def while_(self, cond: ExprLike) -> "BlockBuilder":
        stmt = While(cond=_to_expr(cond))
        self.statements.append(stmt)
        return BlockBuilder(stmt.body)

    def for_(self, loop_var: str, lo: ExprLike, hi: ExprLike) -> "BlockBuilder":
        stmt = For(var=var(loop_var), lo=_to_expr(lo), hi=_to_expr(hi))
        self.statements.append(stmt)
        return BlockBuilder(stmt.body)

    def read(self, target: Union[str, VarRef]) -> "BlockBuilder":
        target_ref = var(target) if isinstance(target, str) else target
        self.statements.append(Read(target=target_ref))
        return self

    def print_(self, *values: ExprLike) -> "BlockBuilder":
        self.statements.append(Print(values=[_to_expr(v) for v in values]))
        return self

    def return_(self) -> "BlockBuilder":
        self.statements.append(Return())
        return self


class IfBuilder:
    """Gives access to both arms of an ``if`` under construction."""

    def __init__(self, stmt: If):
        self._stmt = stmt
        self.then = BlockBuilder(stmt.then_body)
        self.otherwise = BlockBuilder(stmt.else_body)


class ProcBuilder(BlockBuilder):
    """Builds one procedure; supports ``with`` for readable nesting."""

    def __init__(self, decl: ProcDecl):
        super().__init__(decl.body)
        self.decl = decl

    def add_local(self, name: str, dims: Sequence[int] = ()) -> "ProcBuilder":
        self.decl.locals.append(VarDecl(name=name, dims=tuple(dims)))
        return self

    def proc(self, name: str, params: Sequence[str] = ()) -> "ProcBuilder":
        nested = ProcDecl(name=name, params=list(params))
        self.decl.nested.append(nested)
        return ProcBuilder(nested)

    def __enter__(self) -> "ProcBuilder":
        return self

    def __exit__(self, *exc_info) -> None:
        return None


class ProgramBuilder:
    """Top-level builder for a CK program."""

    def __init__(self, name: str = "main"):
        self.ast = Program(name=name)
        self.main = BlockBuilder(self.ast.body)

    def add_global(self, name: str, dims: Sequence[int] = ()) -> "ProgramBuilder":
        self.ast.globals.append(VarDecl(name=name, dims=tuple(dims)))
        return self

    def proc(self, name: str, params: Sequence[str] = ()) -> ProcBuilder:
        decl = ProcDecl(name=name, params=list(params))
        self.ast.procs.append(decl)
        return ProcBuilder(decl)

    def main_call(self, callee: str, args: Sequence[ExprLike] = ()) -> "ProgramBuilder":
        self.main.call(callee, args)
        return self

    def build(self) -> Program:
        return self.ast

    def resolve(self):
        """Run semantic analysis and return the ResolvedProgram."""
        from repro.lang.semantic import analyze

        return analyze(self.ast)

    def source(self) -> str:
        """Render the program under construction to CK source text."""
        from repro.lang.pretty import pretty

        return pretty(self.ast)
