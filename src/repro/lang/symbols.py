"""Symbols, scopes, and the resolved-program container for CK.

The analysis algorithms never look at raw names; they consume
:class:`VarSymbol` and :class:`ProcSymbol` objects produced by semantic
analysis (:mod:`repro.lang.semantic`) plus the program-wide list of
:class:`CallSite` records.

Conventions (matching the paper):

* The main program body is modelled as a zero-parameter procedure at
  **nesting level 0**; procedures declared at program level are level 1,
  their nested procedures level 2, and so on.  ``d_P`` is the maximum
  level of any procedure.
* Program-level ``global`` variables are owned by the main procedure and
  have **variable level 0**; a variable declared in a procedure at level
  *l* has level *l*.
* ``LOCAL(p)`` in the paper's sense is ``p.formals + p.locals`` (all
  names deallocated when ``p`` returns).  For main it additionally
  contains the globals, which is harmless since main is never invoked.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.lang.nodes import CallStmt, Expr, ProcDecl, Program, VarRef


class VarKind(enum.Enum):
    """How a variable was declared."""

    GLOBAL = "global"
    LOCAL = "local"
    FORMAL = "formal"


@dataclass(eq=False)
class VarSymbol:
    """A declared variable (or formal parameter).

    ``uid`` is a dense, program-wide integer used to index bit vectors.
    ``position`` is the 0-based ordinal of a formal parameter (-1 for
    non-formals).  ``dims`` is ``()`` for scalars and for formals (whose
    shape is caller-determined, Fortran-style).
    """

    uid: int
    name: str
    kind: VarKind
    proc: "ProcSymbol"
    position: int = -1
    dims: Tuple[int, ...] = ()
    line: int = 0
    column: int = 0

    @property
    def is_global(self) -> bool:
        return self.kind is VarKind.GLOBAL

    @property
    def is_formal(self) -> bool:
        return self.kind is VarKind.FORMAL

    @property
    def is_array(self) -> bool:
        return bool(self.dims)

    @property
    def level(self) -> int:
        """Declaration nesting level: 0 for globals, else owner's level."""
        if self.kind is VarKind.GLOBAL:
            return 0
        return self.proc.level

    @property
    def qualified_name(self) -> str:
        if self.kind is VarKind.GLOBAL:
            return self.name
        return "%s::%s" % (self.proc.qualified_name, self.name)

    def __repr__(self) -> str:
        return "<var %s #%d>" % (self.qualified_name, self.uid)

    def __hash__(self) -> int:
        return self.uid


@dataclass(eq=False)
class ProcSymbol:
    """A procedure (the main program body is the level-0 procedure).

    ``pid`` is a dense program-wide integer; main always has pid 0.
    """

    pid: int
    name: str
    level: int
    parent: Optional["ProcSymbol"] = None
    formals: List[VarSymbol] = field(default_factory=list)
    locals: List[VarSymbol] = field(default_factory=list)
    nested: List["ProcSymbol"] = field(default_factory=list)
    decl: Optional[ProcDecl] = None  # None exactly for main.
    # Scope dictionary: every name declared directly in this procedure
    # (formals, locals, and for main the globals).  Used for lexical
    # name lookup; procedures live in a separate namespace
    # (``nested_by_name``).
    scope: Dict[str, VarSymbol] = field(default_factory=dict)
    nested_by_name: Dict[str, "ProcSymbol"] = field(default_factory=dict)
    #: Parse-time token-span fingerprint (copied from the declaration;
    #: ``b""`` for ASTs built programmatically).  Lets the incremental
    #: engine's structural diff skip pretty-printing unchanged bodies.
    token_hash: bytes = b""

    @property
    def is_main(self) -> bool:
        return self.parent is None

    @property
    def qualified_name(self) -> str:
        if self.parent is None or self.parent.parent is None:
            return self.name
        return "%s.%s" % (self.parent.qualified_name, self.name)

    @property
    def body(self):
        """The statement list of this procedure's body."""
        return self._body

    @body.setter
    def body(self, statements) -> None:
        self._body = statements

    def local_set(self) -> List[VarSymbol]:
        """``LOCAL(p)``: every variable deallocated when p returns.

        For main this includes the globals (main never returns while the
        program runs, so this never filters anything in practice).
        """
        return self.formals + self.locals

    def lexical_chain(self) -> List["ProcSymbol"]:
        """This procedure followed by its lexical ancestors up to main."""
        chain = []
        proc: Optional[ProcSymbol] = self
        while proc is not None:
            chain.append(proc)
            proc = proc.parent
        return chain

    def __repr__(self) -> str:
        return "<proc %s #%d level=%d>" % (self.qualified_name, self.pid, self.level)

    def __hash__(self) -> int:
        return self.pid


@dataclass(frozen=True)
class ArgBinding:
    """One actual argument at a call site.

    ``by_reference`` is true when the actual is a bare or subscripted
    variable reference — the only case that creates a side-effect
    channel.  ``base`` is the resolved base variable of the reference
    (``None`` for by-value actuals) and ``subscripted`` records whether
    the actual selects an element rather than the whole object.
    """

    position: int
    expr: Expr
    by_reference: bool
    base: Optional[VarSymbol]
    subscripted: bool


@dataclass(eq=False)
class CallSite:
    """A resolved call site ``e = (caller, callee)`` with its bindings."""

    site_id: int
    caller: ProcSymbol
    callee: ProcSymbol
    stmt: CallStmt
    bindings: List[ArgBinding] = field(default_factory=list)

    @property
    def line(self) -> int:
        return self.stmt.line

    def reference_pairs(self) -> List[Tuple[VarSymbol, VarSymbol]]:
        """(actual base, formal) pairs for by-reference arguments."""
        pairs = []
        for binding in self.bindings:
            if binding.by_reference:
                pairs.append((binding.base, self.callee.formals[binding.position]))
        return pairs

    def __repr__(self) -> str:
        return "<site %d: %s -> %s at line %d>" % (
            self.site_id,
            self.caller.qualified_name,
            self.callee.qualified_name,
            self.line,
        )

    def __hash__(self) -> int:
        return self.site_id


@dataclass(eq=False)
class ResolvedProgram:
    """A parsed, name-resolved CK program — what the analyses consume."""

    program: Program
    main: ProcSymbol
    procs: List[ProcSymbol]  # pid order; procs[0] is main.
    variables: List[VarSymbol]  # uid order.
    globals: List[VarSymbol]
    call_sites: List[CallSite]  # site_id order.

    @property
    def num_procs(self) -> int:
        return len(self.procs)

    @property
    def num_call_sites(self) -> int:
        return len(self.call_sites)

    @property
    def max_nesting_level(self) -> int:
        """``d_P``: the deepest procedure declaration level."""
        return max(proc.level for proc in self.procs)

    def proc_named(self, qualified_name: str) -> ProcSymbol:
        """Look up a procedure by qualified name (e.g. ``"p.inner"``)."""
        for proc in self.procs:
            if proc.qualified_name == qualified_name:
                return proc
        raise KeyError(qualified_name)

    def var_named(self, qualified_name: str) -> VarSymbol:
        """Look up a variable by qualified name (e.g. ``"p::x"``)."""
        for var in self.variables:
            if var.qualified_name == qualified_name:
                return var
        raise KeyError(qualified_name)

    def sites_in(self, proc: ProcSymbol) -> List[CallSite]:
        return [site for site in self.call_sites if site.caller is proc]

    def sites_calling(self, proc: ProcSymbol) -> List[CallSite]:
        return [site for site in self.call_sites if site.callee is proc]

    def visible_variables(self, proc: ProcSymbol) -> Dict[str, VarSymbol]:
        """Name -> symbol for every variable visible inside ``proc``
        after lexical shadowing (innermost declaration wins)."""
        visible: Dict[str, VarSymbol] = {}
        for scope_proc in reversed(proc.lexical_chain()):
            visible.update(scope_proc.scope)
        return visible
