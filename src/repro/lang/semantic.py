"""Semantic analysis for CK: scopes, name resolution, call resolution.

:func:`analyze` turns a raw :class:`~repro.lang.nodes.Program` into a
:class:`~repro.lang.symbols.ResolvedProgram`:

* builds the procedure tree with nesting levels (main = level 0),
* checks for duplicate declarations within a scope,
* resolves every variable reference lexically (innermost scope wins),
  annotating the ``VarRef.symbol`` field in place,
* resolves every ``call`` to a visible procedure (Pascal visibility: a
  procedure sees its own nested procedures, itself, its siblings, and
  everything visible to its ancestors — so sibling mutual recursion
  works), checks arity, assigns dense ``site_id`` numbers, and records
  per-argument binding modes (by-reference for bare/subscripted
  variable actuals, by-value otherwise).

Static shape checks: declared scalars may not be subscripted and
declared arrays must be subscripted with exactly their declared rank
whenever they appear outside a call argument position.  Formals are
Fortran-style untyped — their shape is caller-determined — so formals
may be used either way (the interpreter checks at run time).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.lang.errors import SemanticError
from repro.lang.nodes import (
    Assign,
    BinOp,
    CallStmt,
    Expr,
    For,
    If,
    IntLit,
    Print,
    ProcDecl,
    Program,
    Read,
    Return,
    Stmt,
    UnOp,
    VarDecl,
    VarRef,
    While,
)
from repro.lang.symbols import (
    ArgBinding,
    CallSite,
    ProcSymbol,
    ResolvedProgram,
    VarKind,
    VarSymbol,
)


class _Analyzer:
    def __init__(self, program: Program):
        self.program = program
        self.procs: List[ProcSymbol] = []
        self.variables: List[VarSymbol] = []
        self.call_sites: List[CallSite] = []
        # Per-procedure resolution state, installed by ``run`` before each
        # procedure's body is resolved.  ``_var_scopes``/``_proc_scopes``
        # are the procedure's lexical chain of scope dicts (innermost
        # first, shared references — never copies); the caches memoize
        # name → symbol so repeated uses of the same name inside one
        # procedure cost a single dict probe instead of a chain walk.
        self._var_scopes: List[Dict[str, VarSymbol]] = []
        self._proc_scopes: List[Dict[str, ProcSymbol]] = []
        self._var_cache: Dict[str, VarSymbol] = {}
        self._proc_cache: Dict[str, ProcSymbol] = {}

    # -- symbol construction --------------------------------------------------

    def new_var(self, name: str, kind: VarKind, proc: ProcSymbol, position: int = -1,
                dims=(), line: int = 0, column: int = 0) -> VarSymbol:
        symbol = VarSymbol(
            uid=len(self.variables),
            name=name,
            kind=kind,
            proc=proc,
            position=position,
            dims=tuple(dims),
            line=line,
            column=column,
        )
        self.variables.append(symbol)
        return symbol

    def declare(self, proc: ProcSymbol, symbol: VarSymbol) -> None:
        if symbol.name in proc.scope:
            raise SemanticError(
                "duplicate declaration of %r in %s" % (symbol.name, proc.qualified_name),
                symbol.line,
                symbol.column,
            )
        proc.scope[symbol.name] = symbol

    def build_main(self) -> ProcSymbol:
        main = ProcSymbol(
            pid=0,
            name=self.program.name,
            level=0,
            parent=None,
            token_hash=self.program.token_hash,
        )
        main.body = self.program.body
        self.procs.append(main)
        for decl in self.program.globals:
            symbol = self.new_var(
                decl.name, VarKind.GLOBAL, main, dims=decl.dims, line=decl.line,
                column=decl.column,
            )
            self.declare(main, symbol)
            main.locals.append(symbol)
        for proc_decl in self.program.procs:
            self.build_proc(proc_decl, main)
        return main

    def build_proc(self, decl: ProcDecl, parent: ProcSymbol) -> ProcSymbol:
        proc = ProcSymbol(
            pid=len(self.procs),
            name=decl.name,
            level=parent.level + 1,
            parent=parent,
            decl=decl,
            token_hash=decl.token_hash,
        )
        proc.body = decl.body
        self.procs.append(proc)
        if decl.name in parent.nested_by_name:
            raise SemanticError(
                "duplicate procedure %r in %s" % (decl.name, parent.qualified_name),
                decl.line,
                decl.column,
            )
        parent.nested_by_name[decl.name] = proc
        parent.nested.append(proc)
        for position, param in enumerate(decl.params):
            symbol = self.new_var(
                param, VarKind.FORMAL, proc, position=position, line=decl.line,
                column=decl.column,
            )
            self.declare(proc, symbol)
            proc.formals.append(symbol)
        for var_decl in decl.locals:
            symbol = self.new_var(
                var_decl.name, VarKind.LOCAL, proc, dims=var_decl.dims,
                line=var_decl.line, column=var_decl.column,
            )
            self.declare(proc, symbol)
            proc.locals.append(symbol)
        for nested_decl in decl.nested:
            self.build_proc(nested_decl, proc)
        return proc

    # -- lookup ----------------------------------------------------------------

    def lookup_var(self, name: str, proc: ProcSymbol, line: int, column: int) -> VarSymbol:
        symbol = self._var_cache.get(name)
        if symbol is not None:
            return symbol
        for scope in self._var_scopes:
            symbol = scope.get(name)
            if symbol is not None:
                self._var_cache[name] = symbol
                return symbol
        raise SemanticError(
            "undeclared variable %r in %s" % (name, proc.qualified_name), line, column
        )

    def lookup_proc(self, name: str, proc: ProcSymbol, line: int, column: int) -> ProcSymbol:
        target = self._proc_cache.get(name)
        if target is not None:
            return target
        for scope in self._proc_scopes:
            target = scope.get(name)
            if target is not None:
                self._proc_cache[name] = target
                return target
        raise SemanticError(
            "call to undeclared procedure %r from %s" % (name, proc.qualified_name),
            line,
            column,
        )

    # -- reference checking ------------------------------------------------------

    def resolve_ref(self, ref: VarRef, proc: ProcSymbol, allow_whole_array: bool) -> VarSymbol:
        symbol = self.lookup_var(ref.name, proc, ref.line, ref.column)
        ref.symbol = symbol
        for index in ref.indices:
            self.resolve_expr(index, proc)
        if symbol.is_formal:
            # Formals are untyped; any usage shape is legal statically.
            return symbol
        if symbol.is_array:
            if not ref.indices:
                if not allow_whole_array:
                    raise SemanticError(
                        "array %r needs subscripts here" % ref.name, ref.line, ref.column
                    )
            elif len(ref.indices) != len(symbol.dims):
                raise SemanticError(
                    "array %r has rank %d, got %d subscripts"
                    % (ref.name, len(symbol.dims), len(ref.indices)),
                    ref.line,
                    ref.column,
                )
        elif ref.indices:
            raise SemanticError(
                "scalar %r may not be subscripted" % ref.name, ref.line, ref.column
            )
        return symbol

    def resolve_expr(self, expr: Expr, proc: ProcSymbol) -> None:
        if isinstance(expr, IntLit):
            return
        if isinstance(expr, VarRef):
            self.resolve_ref(expr, proc, allow_whole_array=False)
            return
        if isinstance(expr, BinOp):
            self.resolve_expr(expr.left, proc)
            self.resolve_expr(expr.right, proc)
            return
        if isinstance(expr, UnOp):
            self.resolve_expr(expr.operand, proc)
            return
        raise SemanticError("unknown expression node %r" % (expr,))

    # -- statement resolution ------------------------------------------------------

    def resolve_body(self, body: List[Stmt], proc: ProcSymbol) -> None:
        for stmt in body:
            self.resolve_stmt(stmt, proc)

    def resolve_stmt(self, stmt: Stmt, proc: ProcSymbol) -> None:
        if isinstance(stmt, Assign):
            self.resolve_ref(stmt.target, proc, allow_whole_array=False)
            self.resolve_expr(stmt.value, proc)
        elif isinstance(stmt, CallStmt):
            self.resolve_call(stmt, proc)
        elif isinstance(stmt, If):
            self.resolve_expr(stmt.cond, proc)
            self.resolve_body(stmt.then_body, proc)
            self.resolve_body(stmt.else_body, proc)
        elif isinstance(stmt, While):
            self.resolve_expr(stmt.cond, proc)
            self.resolve_body(stmt.body, proc)
        elif isinstance(stmt, For):
            symbol = self.resolve_ref(stmt.var, proc, allow_whole_array=False)
            if symbol.is_array:
                raise SemanticError(
                    "for-loop variable %r must be scalar" % stmt.var.name,
                    stmt.line,
                    stmt.column,
                )
            self.resolve_expr(stmt.lo, proc)
            self.resolve_expr(stmt.hi, proc)
            self.resolve_body(stmt.body, proc)
        elif isinstance(stmt, Read):
            self.resolve_ref(stmt.target, proc, allow_whole_array=False)
        elif isinstance(stmt, Print):
            for value in stmt.values:
                self.resolve_expr(value, proc)
        elif isinstance(stmt, Return):
            pass
        else:
            raise SemanticError("unknown statement node %r" % (stmt,))

    def resolve_call(self, stmt: CallStmt, proc: ProcSymbol) -> None:
        callee = self.lookup_proc(stmt.callee, proc, stmt.line, stmt.column)
        if len(stmt.args) != len(callee.formals):
            raise SemanticError(
                "call to %s expects %d arguments, got %d"
                % (callee.qualified_name, len(callee.formals), len(stmt.args)),
                stmt.line,
                stmt.column,
            )
        bindings: List[ArgBinding] = []
        for position, arg in enumerate(stmt.args):
            if isinstance(arg, VarRef):
                base = self.resolve_ref(arg, proc, allow_whole_array=True)
                bindings.append(
                    ArgBinding(
                        position=position,
                        expr=arg,
                        by_reference=True,
                        base=base,
                        subscripted=bool(arg.indices),
                    )
                )
            else:
                self.resolve_expr(arg, proc)
                bindings.append(
                    ArgBinding(
                        position=position,
                        expr=arg,
                        by_reference=False,
                        base=None,
                        subscripted=False,
                    )
                )
        stmt.proc = callee
        stmt.site_id = len(self.call_sites)
        self.call_sites.append(
            CallSite(
                site_id=stmt.site_id,
                caller=proc,
                callee=callee,
                stmt=stmt,
                bindings=bindings,
            )
        )

    # -- driver ----------------------------------------------------------------

    def run(self) -> ResolvedProgram:
        main = self.build_main()
        # Every scope exists once ``build_main`` returns, so the lexical
        # chains can be precomputed as lists of shared scope-dict
        # references (parents come before children in pid order).
        var_chains: Dict[int, List[Dict[str, VarSymbol]]] = {}
        proc_chains: Dict[int, List[Dict[str, ProcSymbol]]] = {}
        for proc in self.procs:
            if proc.parent is None:
                var_chains[proc.pid] = [proc.scope]
                proc_chains[proc.pid] = [proc.nested_by_name]
            else:
                var_chains[proc.pid] = [proc.scope] + var_chains[proc.parent.pid]
                proc_chains[proc.pid] = [proc.nested_by_name] + proc_chains[proc.parent.pid]
        # Resolve bodies in pid order so call-site ids are deterministic.
        for proc in self.procs:
            self._var_scopes = var_chains[proc.pid]
            self._proc_scopes = proc_chains[proc.pid]
            self._var_cache = {}
            self._proc_cache = {}
            self.resolve_body(proc.body, proc)
        globals_ = [var for var in self.variables if var.is_global]
        return ResolvedProgram(
            program=self.program,
            main=main,
            procs=self.procs,
            variables=self.variables,
            globals=globals_,
            call_sites=self.call_sites,
        )


def analyze(program: Program) -> ResolvedProgram:
    """Run semantic analysis over a parsed program.

    Mutates the AST in place (filling ``VarRef.symbol``,
    ``CallStmt.proc`` and ``CallStmt.site_id``) and returns the
    :class:`ResolvedProgram` wrapper.
    """
    return _Analyzer(program).run()


def compile_source(source: str) -> ResolvedProgram:
    """Convenience: parse + analyze CK source text."""
    from repro.lang.parser import parse_program

    return analyze(parse_program(source))
