"""Recursive-descent parser for the CK language.

Grammar (EBNF; ``{x}`` repetition, ``[x]`` option)::

    program   = "program" IDENT {global_decl | proc_decl}
                "begin" {stmt} "end"
    global    = "global" var_items
    proc      = "proc" IDENT "(" [IDENT {"," IDENT}] ")"
                {local_decl | proc_decl} "begin" {stmt} "end"
    local     = "local" var_items
    var_items = var_item {"," var_item}
    var_item  = IDENT | "array" IDENT "[" INT "]" {"[" INT "]"}
    stmt      = assign | call | if | while | for | return | read | print
    assign    = lvalue ":=" expr
    lvalue    = IDENT {"[" expr "]"}
    call      = "call" IDENT "(" [expr {"," expr}] ")"
    if        = "if" expr "then" {stmt} ["else" {stmt}] "end"
    while     = "while" expr "do" {stmt} "end"
    for       = "for" IDENT ":=" expr "to" expr "do" {stmt} "end"
    read      = "read" lvalue
    print     = "print" expr {"," expr}

Expressions use conventional precedence (``or`` < ``and`` < ``not`` <
comparisons < additive < multiplicative < unary minus).  Optional
semicolons may separate statements and declarations.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.lang.errors import ParseError
from repro.lang.lexer import tokenize
from repro.lang.nodes import (
    Assign,
    BinOp,
    CallStmt,
    Expr,
    For,
    If,
    IntLit,
    Print,
    ProcDecl,
    Program,
    Read,
    Return,
    Stmt,
    UnOp,
    VarDecl,
    VarRef,
    While,
)
from repro.lang.tokens import Token, TokenKind

_COMPARISON_OPS = {
    TokenKind.EQ: "=",
    TokenKind.NE: "!=",
    TokenKind.LT: "<",
    TokenKind.LE: "<=",
    TokenKind.GT: ">",
    TokenKind.GE: ">=",
}

_ADDITIVE_OPS = {TokenKind.PLUS: "+", TokenKind.MINUS: "-"}

_MULTIPLICATIVE_OPS = {
    TokenKind.STAR: "*",
    TokenKind.SLASH: "/",
    TokenKind.DIV: "div",
    TokenKind.MOD: "mod",
}

_STATEMENT_STARTERS = {
    TokenKind.IDENT,
    TokenKind.CALL,
    TokenKind.IF,
    TokenKind.WHILE,
    TokenKind.FOR,
    TokenKind.RETURN,
    TokenKind.READ,
    TokenKind.PRINT,
}


class _Parser:
    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.pos = 0

    # -- token plumbing -----------------------------------------------------

    def peek(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind is not TokenKind.EOF:
            self.pos += 1
        return token

    def check(self, kind: TokenKind) -> bool:
        return self.peek().kind is kind

    def accept(self, kind: TokenKind) -> bool:
        if self.check(kind):
            self.advance()
            return True
        return False

    def expect(self, kind: TokenKind, context: str) -> Token:
        token = self.peek()
        if token.kind is not kind:
            raise ParseError(
                "expected %s in %s, found %s" % (kind.value, context, token.kind.value),
                token.line,
                token.column,
            )
        return self.advance()

    def skip_separators(self) -> None:
        while self.accept(TokenKind.SEMI):
            pass

    # -- program and declarations -------------------------------------------

    def parse_program(self) -> Program:
        start = self.expect(TokenKind.PROGRAM, "program header")
        name = self.expect(TokenKind.IDENT, "program header").value
        globals_: List[VarDecl] = []
        procs: List[ProcDecl] = []
        self.skip_separators()
        while True:
            if self.check(TokenKind.GLOBAL):
                globals_.extend(self.parse_var_decls(TokenKind.GLOBAL))
            elif self.check(TokenKind.PROC):
                procs.append(self.parse_proc())
            else:
                break
            self.skip_separators()
        self.expect(TokenKind.BEGIN, "program body")
        body = self.parse_statements()
        self.expect(TokenKind.END, "program body")
        self.skip_separators()
        eof = self.peek()
        if eof.kind is not TokenKind.EOF:
            raise ParseError(
                "trailing input after program end: %s" % eof.kind.value, eof.line, eof.column
            )
        return Program(
            name=name,
            globals=globals_,
            procs=procs,
            body=body,
            line=start.line,
            column=start.column,
        )

    def parse_var_decls(self, keyword: TokenKind) -> List[VarDecl]:
        self.expect(keyword, "variable declaration")
        decls = [self.parse_var_item()]
        while self.accept(TokenKind.COMMA):
            decls.append(self.parse_var_item())
        return decls

    def parse_var_item(self) -> VarDecl:
        if self.accept(TokenKind.ARRAY):
            name_token = self.expect(TokenKind.IDENT, "array declaration")
            dims: List[int] = []
            while self.accept(TokenKind.LBRACKET):
                size_token = self.expect(TokenKind.INT, "array dimension")
                if size_token.value <= 0:
                    raise ParseError(
                        "array dimension must be positive", size_token.line, size_token.column
                    )
                dims.append(size_token.value)
                self.expect(TokenKind.RBRACKET, "array dimension")
            if not dims:
                raise ParseError(
                    "array declaration requires at least one dimension",
                    name_token.line,
                    name_token.column,
                )
            return VarDecl(
                name=name_token.value,
                dims=tuple(dims),
                line=name_token.line,
                column=name_token.column,
            )
        name_token = self.expect(TokenKind.IDENT, "variable declaration")
        return VarDecl(name=name_token.value, line=name_token.line, column=name_token.column)

    def parse_proc(self) -> ProcDecl:
        start = self.expect(TokenKind.PROC, "procedure declaration")
        name = self.expect(TokenKind.IDENT, "procedure declaration").value
        self.expect(TokenKind.LPAREN, "parameter list")
        params: List[str] = []
        if not self.check(TokenKind.RPAREN):
            params.append(self.expect(TokenKind.IDENT, "parameter list").value)
            while self.accept(TokenKind.COMMA):
                params.append(self.expect(TokenKind.IDENT, "parameter list").value)
        self.expect(TokenKind.RPAREN, "parameter list")
        locals_: List[VarDecl] = []
        nested: List[ProcDecl] = []
        self.skip_separators()
        while True:
            if self.check(TokenKind.LOCAL):
                locals_.extend(self.parse_var_decls(TokenKind.LOCAL))
            elif self.check(TokenKind.PROC):
                nested.append(self.parse_proc())
            else:
                break
            self.skip_separators()
        self.expect(TokenKind.BEGIN, "procedure body")
        body = self.parse_statements()
        self.expect(TokenKind.END, "procedure body")
        return ProcDecl(
            name=name,
            params=params,
            locals=locals_,
            nested=nested,
            body=body,
            line=start.line,
            column=start.column,
        )

    # -- statements -----------------------------------------------------------

    def parse_statements(self) -> List[Stmt]:
        statements: List[Stmt] = []
        self.skip_separators()
        while self.peek().kind in _STATEMENT_STARTERS:
            statements.append(self.parse_statement())
            self.skip_separators()
        return statements

    def parse_statement(self) -> Stmt:
        token = self.peek()
        if token.kind is TokenKind.IDENT:
            return self.parse_assign()
        if token.kind is TokenKind.CALL:
            return self.parse_call()
        if token.kind is TokenKind.IF:
            return self.parse_if()
        if token.kind is TokenKind.WHILE:
            return self.parse_while()
        if token.kind is TokenKind.FOR:
            return self.parse_for()
        if token.kind is TokenKind.RETURN:
            self.advance()
            return Return(line=token.line, column=token.column)
        if token.kind is TokenKind.READ:
            self.advance()
            target = self.parse_lvalue()
            return Read(target=target, line=token.line, column=token.column)
        if token.kind is TokenKind.PRINT:
            self.advance()
            values = [self.parse_expr()]
            while self.accept(TokenKind.COMMA):
                values.append(self.parse_expr())
            return Print(values=values, line=token.line, column=token.column)
        raise ParseError("expected statement, found %s" % token.kind.value, token.line, token.column)

    def parse_assign(self) -> Assign:
        target = self.parse_lvalue()
        self.expect(TokenKind.ASSIGN, "assignment")
        value = self.parse_expr()
        return Assign(target=target, value=value, line=target.line, column=target.column)

    def parse_lvalue(self) -> VarRef:
        name_token = self.expect(TokenKind.IDENT, "variable reference")
        indices: List[Expr] = []
        while self.accept(TokenKind.LBRACKET):
            indices.append(self.parse_expr())
            self.expect(TokenKind.RBRACKET, "subscript")
        return VarRef(
            name=name_token.value,
            indices=indices,
            line=name_token.line,
            column=name_token.column,
        )

    def parse_call(self) -> CallStmt:
        start = self.expect(TokenKind.CALL, "call statement")
        callee = self.expect(TokenKind.IDENT, "call statement").value
        self.expect(TokenKind.LPAREN, "argument list")
        args: List[Expr] = []
        if not self.check(TokenKind.RPAREN):
            args.append(self.parse_expr())
            while self.accept(TokenKind.COMMA):
                args.append(self.parse_expr())
        self.expect(TokenKind.RPAREN, "argument list")
        return CallStmt(callee=callee, args=args, line=start.line, column=start.column)

    def parse_if(self) -> If:
        start = self.expect(TokenKind.IF, "if statement")
        cond = self.parse_expr()
        self.expect(TokenKind.THEN, "if statement")
        then_body = self.parse_statements()
        else_body: List[Stmt] = []
        if self.accept(TokenKind.ELSE):
            else_body = self.parse_statements()
        self.expect(TokenKind.END, "if statement")
        return If(
            cond=cond,
            then_body=then_body,
            else_body=else_body,
            line=start.line,
            column=start.column,
        )

    def parse_while(self) -> While:
        start = self.expect(TokenKind.WHILE, "while statement")
        cond = self.parse_expr()
        self.expect(TokenKind.DO, "while statement")
        body = self.parse_statements()
        self.expect(TokenKind.END, "while statement")
        return While(cond=cond, body=body, line=start.line, column=start.column)

    def parse_for(self) -> For:
        start = self.expect(TokenKind.FOR, "for statement")
        var_token = self.expect(TokenKind.IDENT, "for statement")
        var = VarRef(name=var_token.value, line=var_token.line, column=var_token.column)
        self.expect(TokenKind.ASSIGN, "for statement")
        lo = self.parse_expr()
        self.expect(TokenKind.TO, "for statement")
        hi = self.parse_expr()
        self.expect(TokenKind.DO, "for statement")
        body = self.parse_statements()
        self.expect(TokenKind.END, "for statement")
        return For(var=var, lo=lo, hi=hi, body=body, line=start.line, column=start.column)

    # -- expressions ----------------------------------------------------------

    def parse_expr(self) -> Expr:
        return self.parse_or()

    def parse_or(self) -> Expr:
        left = self.parse_and()
        while self.check(TokenKind.OR):
            op_token = self.advance()
            right = self.parse_and()
            left = BinOp("or", left, right, line=op_token.line, column=op_token.column)
        return left

    def parse_and(self) -> Expr:
        left = self.parse_not()
        while self.check(TokenKind.AND):
            op_token = self.advance()
            right = self.parse_not()
            left = BinOp("and", left, right, line=op_token.line, column=op_token.column)
        return left

    def parse_not(self) -> Expr:
        if self.check(TokenKind.NOT):
            op_token = self.advance()
            operand = self.parse_not()
            return UnOp("not", operand, line=op_token.line, column=op_token.column)
        return self.parse_comparison()

    def parse_comparison(self) -> Expr:
        # Left-associative, like the arithmetic operators: a < b < c
        # parses as (a < b) < c (comparisons yield 0/1 integers).
        left = self.parse_additive()
        while self.peek().kind in _COMPARISON_OPS:
            op_token = self.advance()
            right = self.parse_additive()
            left = BinOp(
                _COMPARISON_OPS[op_token.kind],
                left,
                right,
                line=op_token.line,
                column=op_token.column,
            )
        return left

    def parse_additive(self) -> Expr:
        left = self.parse_multiplicative()
        while self.peek().kind in _ADDITIVE_OPS:
            op_token = self.advance()
            right = self.parse_multiplicative()
            left = BinOp(
                _ADDITIVE_OPS[op_token.kind],
                left,
                right,
                line=op_token.line,
                column=op_token.column,
            )
        return left

    def parse_multiplicative(self) -> Expr:
        left = self.parse_unary()
        while self.peek().kind in _MULTIPLICATIVE_OPS:
            op_token = self.advance()
            right = self.parse_unary()
            left = BinOp(
                _MULTIPLICATIVE_OPS[op_token.kind],
                left,
                right,
                line=op_token.line,
                column=op_token.column,
            )
        return left

    def parse_unary(self) -> Expr:
        if self.check(TokenKind.MINUS):
            op_token = self.advance()
            operand = self.parse_unary()
            return UnOp("-", operand, line=op_token.line, column=op_token.column)
        return self.parse_primary()

    def parse_primary(self) -> Expr:
        token = self.peek()
        if token.kind is TokenKind.INT:
            self.advance()
            return IntLit(token.value, line=token.line, column=token.column)
        if token.kind is TokenKind.IDENT:
            return self.parse_lvalue()
        if token.kind is TokenKind.LPAREN:
            self.advance()
            inner = self.parse_expr()
            self.expect(TokenKind.RPAREN, "parenthesized expression")
            return inner
        raise ParseError(
            "expected expression, found %s" % token.kind.value, token.line, token.column
        )


def parse_program(source: str) -> Program:
    """Parse CK source text into a :class:`Program` AST (unresolved)."""
    return _Parser(tokenize(source)).parse_program()
