"""Recursive-descent parser for the CK language.

Grammar (EBNF; ``{x}`` repetition, ``[x]`` option)::

    program   = "program" IDENT {global_decl | proc_decl}
                "begin" {stmt} "end"
    global    = "global" var_items
    proc      = "proc" IDENT "(" [IDENT {"," IDENT}] ")"
                {local_decl | proc_decl} "begin" {stmt} "end"
    local     = "local" var_items
    var_items = var_item {"," var_item}
    var_item  = IDENT | "array" IDENT "[" INT "]" {"[" INT "]"}
    stmt      = assign | call | if | while | for | return | read | print
    assign    = lvalue ":=" expr
    lvalue    = IDENT {"[" expr "]"}
    call      = "call" IDENT "(" [expr {"," expr}] ")"
    if        = "if" expr "then" {stmt} ["else" {stmt}] "end"
    while     = "while" expr "do" {stmt} "end"
    for       = "for" IDENT ":=" expr "to" expr "do" {stmt} "end"
    read      = "read" lvalue
    print     = "print" expr {"," expr}

Expressions use conventional precedence (``or`` < ``and`` < ``not`` <
comparisons < additive < multiplicative < unary minus).  Optional
semicolons may separate statements and declarations.

Implementation note: the parser runs directly over the lexer's
:class:`~repro.lang.lexer.TokenStream` — four parallel lists of dense
kind codes, values, lines, and columns.  All lookahead decisions
compare plain ints and every field access is a flat list index; no
token objects exist on the hot path.  That, plus binding the hot
lists/tables to locals inside the loops, is what makes the parse phase
fast — the grammar, the AST shapes, and every diagnostic message and
position are identical to the straightforward token-object parser this
replaced.
"""

from __future__ import annotations

import hashlib
from typing import List, Tuple

from repro.lang.errors import ParseError
from repro.lang.lexer import TokenStream, tokenize_stream
from repro.lang.nodes import (
    Assign,
    BinOp,
    CallStmt,
    Expr,
    For,
    If,
    IntLit,
    Print,
    ProcDecl,
    Program,
    Read,
    Return,
    Stmt,
    UnOp,
    VarDecl,
    VarRef,
    While,
)
from repro.lang.tokens import KIND_BY_CODE, TokenKind

# Dense int codes for every kind the parser dispatches on.
_INT_C = TokenKind.INT.code
_IDENT_C = TokenKind.IDENT.code
_GLOBAL_C = TokenKind.GLOBAL.code
_LOCAL_C = TokenKind.LOCAL.code
_ARRAY_C = TokenKind.ARRAY.code
_PROC_C = TokenKind.PROC.code
_CALL_C = TokenKind.CALL.code
_IF_C = TokenKind.IF.code
_ELSE_C = TokenKind.ELSE.code
_WHILE_C = TokenKind.WHILE.code
_FOR_C = TokenKind.FOR.code
_RETURN_C = TokenKind.RETURN.code
_READ_C = TokenKind.READ.code
_PRINT_C = TokenKind.PRINT.code
_AND_C = TokenKind.AND.code
_OR_C = TokenKind.OR.code
_NOT_C = TokenKind.NOT.code
_MINUS_C = TokenKind.MINUS.code
_LPAREN_C = TokenKind.LPAREN.code
_RPAREN_C = TokenKind.RPAREN.code
_LBRACKET_C = TokenKind.LBRACKET.code
_COMMA_C = TokenKind.COMMA.code
_SEMI_C = TokenKind.SEMI.code
_EOF_C = TokenKind.EOF.code

# Operator tables keyed by kind code; values are the AST ``op`` strings.
_COMPARISON_OPS = {
    TokenKind.EQ.code: "=",
    TokenKind.NE.code: "!=",
    TokenKind.LT.code: "<",
    TokenKind.LE.code: "<=",
    TokenKind.GT.code: ">",
    TokenKind.GE.code: ">=",
}

_ADDITIVE_OPS = {TokenKind.PLUS.code: "+", TokenKind.MINUS.code: "-"}

_MULTIPLICATIVE_OPS = {
    TokenKind.STAR.code: "*",
    TokenKind.SLASH.code: "/",
    TokenKind.DIV.code: "div",
    TokenKind.MOD.code: "mod",
}

_STATEMENT_STARTERS = frozenset(
    {_IDENT_C, _CALL_C, _IF_C, _WHILE_C, _FOR_C, _RETURN_C, _READ_C, _PRINT_C}
)


class _Parser:
    __slots__ = ("codes", "values", "lines", "columns", "pos")

    def __init__(self, stream: TokenStream):
        self.codes = stream.codes
        self.values = stream.values
        self.lines = stream.lines
        self.columns = stream.columns
        self.pos = 0

    # -- token plumbing -----------------------------------------------------

    def expect(self, kind: TokenKind, context: str) -> int:
        """Consume one token of ``kind`` and return its stream index."""
        pos = self.pos
        if self.codes[pos] != kind.code:
            raise ParseError(
                "expected %s in %s, found %s"
                % (kind.value, context, KIND_BY_CODE[self.codes[pos]].value),
                self.lines[pos],
                self.columns[pos],
            )
        self.pos = pos + 1
        return pos

    def accept(self, code: int) -> bool:
        if self.codes[self.pos] == code:
            self.pos += 1
            return True
        return False

    def skip_separators(self) -> None:
        codes = self.codes
        pos = self.pos
        while codes[pos] == _SEMI_C:
            pos += 1
        self.pos = pos

    def _span_hash(
        self,
        salt: bytes,
        start: int,
        end: int,
        child_spans: List[Tuple[int, int, ProcDecl]],
    ) -> bytes:
        """Fingerprint of the token span ``[start, end)`` with each
        directly nested procedure's span replaced by a name/arity
        marker — so an inner edit changes only the inner fingerprint.

        This is the cheap replacement for pretty-printing the AST in
        the incremental engine's structural diff: the token span fully
        determines the parsed structure (it can only be *over*-
        sensitive, e.g. to redundant separators, which merely costs a
        spurious re-solve — never an unsound reuse).
        """
        hasher = hashlib.sha256(salt)
        codes = self.codes
        values = self.values
        pos = start
        for child_start, child_end, child in child_spans:
            self._hash_segment(hasher, codes, values, pos, child_start)
            hasher.update(
                b"\x01%s/%d" % (child.name.encode("utf-8"), len(child.params))
            )
            pos = child_end
        self._hash_segment(hasher, codes, values, pos, end)
        return hasher.digest()

    @staticmethod
    def _hash_segment(hasher, codes, values, lo: int, hi: int) -> None:
        if hi <= lo:
            return
        hasher.update(bytes(codes[lo:hi]))  # Kind codes are < 256.
        hasher.update(
            b"\x00".join(
                str(value).encode("utf-8")
                for value in values[lo:hi]
                if value is not None
            )
        )
        hasher.update(b"\x02")  # Segment boundary.

    # -- program and declarations -------------------------------------------

    def parse_program(self) -> Program:
        start = self.expect(TokenKind.PROGRAM, "program header")
        name = self.values[self.expect(TokenKind.IDENT, "program header")]
        globals_: List[VarDecl] = []
        procs: List[ProcDecl] = []
        codes = self.codes
        self.skip_separators()
        while True:
            code = codes[self.pos]
            if code == _GLOBAL_C:
                globals_.extend(self.parse_var_decls(TokenKind.GLOBAL))
            elif code == _PROC_C:
                procs.append(self.parse_proc())
            else:
                break
            self.skip_separators()
        begin_at = self.expect(TokenKind.BEGIN, "program body")
        body = self.parse_statements()
        end_at = self.expect(TokenKind.END, "program body")
        # Main's fingerprint covers its name and body span only —
        # mirroring fingerprint_text, which handles globals and
        # procedure declarations through their own fingerprints.
        token_hash = self._span_hash(
            b"main\x00%s\x00" % name.encode("utf-8"), begin_at, end_at + 1, []
        )
        self.skip_separators()
        pos = self.pos
        if codes[pos] != _EOF_C:
            raise ParseError(
                "trailing input after program end: %s" % KIND_BY_CODE[codes[pos]].value,
                self.lines[pos],
                self.columns[pos],
            )
        return Program(
            name=name,
            globals=globals_,
            procs=procs,
            body=body,
            line=self.lines[start],
            column=self.columns[start],
            token_hash=token_hash,
        )

    def parse_var_decls(self, keyword: TokenKind) -> List[VarDecl]:
        self.expect(keyword, "variable declaration")
        decls = [self.parse_var_item()]
        while self.accept(_COMMA_C):
            decls.append(self.parse_var_item())
        return decls

    def parse_var_item(self) -> VarDecl:
        if self.accept(_ARRAY_C):
            name_at = self.expect(TokenKind.IDENT, "array declaration")
            dims: List[int] = []
            while self.accept(_LBRACKET_C):
                size_at = self.expect(TokenKind.INT, "array dimension")
                size = self.values[size_at]
                if size <= 0:
                    raise ParseError(
                        "array dimension must be positive",
                        self.lines[size_at],
                        self.columns[size_at],
                    )
                dims.append(size)
                self.expect(TokenKind.RBRACKET, "array dimension")
            if not dims:
                raise ParseError(
                    "array declaration requires at least one dimension",
                    self.lines[name_at],
                    self.columns[name_at],
                )
            return VarDecl(
                name=self.values[name_at],
                dims=tuple(dims),
                line=self.lines[name_at],
                column=self.columns[name_at],
            )
        name_at = self.expect(TokenKind.IDENT, "variable declaration")
        return VarDecl(
            name=self.values[name_at],
            line=self.lines[name_at],
            column=self.columns[name_at],
        )

    def parse_proc(self) -> ProcDecl:
        start = self.expect(TokenKind.PROC, "procedure declaration")
        name = self.values[self.expect(TokenKind.IDENT, "procedure declaration")]
        self.expect(TokenKind.LPAREN, "parameter list")
        params: List[str] = []
        if self.codes[self.pos] != _RPAREN_C:
            params.append(self.values[self.expect(TokenKind.IDENT, "parameter list")])
            while self.accept(_COMMA_C):
                params.append(self.values[self.expect(TokenKind.IDENT, "parameter list")])
        self.expect(TokenKind.RPAREN, "parameter list")
        locals_: List[VarDecl] = []
        nested: List[ProcDecl] = []
        child_spans: List[Tuple[int, int, ProcDecl]] = []
        codes = self.codes
        self.skip_separators()
        while True:
            code = codes[self.pos]
            if code == _LOCAL_C:
                locals_.extend(self.parse_var_decls(TokenKind.LOCAL))
            elif code == _PROC_C:
                child_start = self.pos
                child = self.parse_proc()
                nested.append(child)
                child_spans.append((child_start, self.pos, child))
            else:
                break
            self.skip_separators()
        self.expect(TokenKind.BEGIN, "procedure body")
        body = self.parse_statements()
        end_at = self.expect(TokenKind.END, "procedure body")
        return ProcDecl(
            name=name,
            params=params,
            locals=locals_,
            nested=nested,
            body=body,
            line=self.lines[start],
            column=self.columns[start],
            token_hash=self._span_hash(
                b"proc\x00", start, end_at + 1, child_spans
            ),
        )

    # -- statements -----------------------------------------------------------

    def parse_statements(self) -> List[Stmt]:
        statements: List[Stmt] = []
        append = statements.append
        codes = self.codes
        starters = _STATEMENT_STARTERS
        pos = self.pos
        while codes[pos] == _SEMI_C:
            pos += 1
        self.pos = pos
        while codes[pos] in starters:
            append(self.parse_statement())
            pos = self.pos
            while codes[pos] == _SEMI_C:
                pos += 1
            self.pos = pos
        return statements

    def parse_statement(self) -> Stmt:
        pos = self.pos
        code = self.codes[pos]
        if code == _IDENT_C:
            return self.parse_assign()
        if code == _CALL_C:
            return self.parse_call()
        if code == _IF_C:
            return self.parse_if()
        if code == _WHILE_C:
            return self.parse_while()
        if code == _FOR_C:
            return self.parse_for()
        line = self.lines[pos]
        column = self.columns[pos]
        if code == _RETURN_C:
            self.pos = pos + 1
            return Return(line=line, column=column)
        if code == _READ_C:
            self.pos = pos + 1
            target = self.parse_lvalue()
            return Read(target=target, line=line, column=column)
        if code == _PRINT_C:
            self.pos = pos + 1
            values = [self.parse_expr()]
            while self.accept(_COMMA_C):
                values.append(self.parse_expr())
            return Print(values=values, line=line, column=column)
        raise ParseError(
            "expected statement, found %s" % KIND_BY_CODE[code].value, line, column
        )

    def parse_assign(self) -> Assign:
        target = self.parse_lvalue()
        self.expect(TokenKind.ASSIGN, "assignment")
        value = self.parse_expr()
        return Assign(target=target, value=value, line=target.line, column=target.column)

    def parse_lvalue(self) -> VarRef:
        name_at = self.expect(TokenKind.IDENT, "variable reference")
        indices: List[Expr] = []
        while self.accept(_LBRACKET_C):
            indices.append(self.parse_expr())
            self.expect(TokenKind.RBRACKET, "subscript")
        return VarRef(
            name=self.values[name_at],
            indices=indices,
            line=self.lines[name_at],
            column=self.columns[name_at],
        )

    def parse_call(self) -> CallStmt:
        start = self.expect(TokenKind.CALL, "call statement")
        callee = self.values[self.expect(TokenKind.IDENT, "call statement")]
        self.expect(TokenKind.LPAREN, "argument list")
        args: List[Expr] = []
        if self.codes[self.pos] != _RPAREN_C:
            args.append(self.parse_expr())
            while self.accept(_COMMA_C):
                args.append(self.parse_expr())
        self.expect(TokenKind.RPAREN, "argument list")
        return CallStmt(
            callee=callee, args=args, line=self.lines[start], column=self.columns[start]
        )

    def parse_if(self) -> If:
        start = self.expect(TokenKind.IF, "if statement")
        cond = self.parse_expr()
        self.expect(TokenKind.THEN, "if statement")
        then_body = self.parse_statements()
        else_body: List[Stmt] = []
        if self.accept(_ELSE_C):
            else_body = self.parse_statements()
        self.expect(TokenKind.END, "if statement")
        return If(
            cond=cond,
            then_body=then_body,
            else_body=else_body,
            line=self.lines[start],
            column=self.columns[start],
        )

    def parse_while(self) -> While:
        start = self.expect(TokenKind.WHILE, "while statement")
        cond = self.parse_expr()
        self.expect(TokenKind.DO, "while statement")
        body = self.parse_statements()
        self.expect(TokenKind.END, "while statement")
        return While(
            cond=cond, body=body, line=self.lines[start], column=self.columns[start]
        )

    def parse_for(self) -> For:
        start = self.expect(TokenKind.FOR, "for statement")
        var_at = self.expect(TokenKind.IDENT, "for statement")
        var = VarRef(
            name=self.values[var_at],
            line=self.lines[var_at],
            column=self.columns[var_at],
        )
        self.expect(TokenKind.ASSIGN, "for statement")
        lo = self.parse_expr()
        self.expect(TokenKind.TO, "for statement")
        hi = self.parse_expr()
        self.expect(TokenKind.DO, "for statement")
        body = self.parse_statements()
        self.expect(TokenKind.END, "for statement")
        return For(
            var=var,
            lo=lo,
            hi=hi,
            body=body,
            line=self.lines[start],
            column=self.columns[start],
        )

    # -- expressions ----------------------------------------------------------

    def parse_expr(self) -> Expr:
        return self.parse_or()

    def parse_or(self) -> Expr:
        left = self.parse_and()
        codes = self.codes
        while codes[self.pos] == _OR_C:
            at = self.pos
            self.pos = at + 1
            right = self.parse_and()
            left = BinOp("or", left, right, line=self.lines[at], column=self.columns[at])
        return left

    def parse_and(self) -> Expr:
        left = self.parse_not()
        codes = self.codes
        while codes[self.pos] == _AND_C:
            at = self.pos
            self.pos = at + 1
            right = self.parse_not()
            left = BinOp("and", left, right, line=self.lines[at], column=self.columns[at])
        return left

    def parse_not(self) -> Expr:
        at = self.pos
        if self.codes[at] == _NOT_C:
            self.pos = at + 1
            operand = self.parse_not()
            return UnOp("not", operand, line=self.lines[at], column=self.columns[at])
        return self.parse_comparison()

    def parse_comparison(self) -> Expr:
        # Left-associative, like the arithmetic operators: a < b < c
        # parses as (a < b) < c (comparisons yield 0/1 integers).
        left = self.parse_additive()
        codes = self.codes
        ops_get = _COMPARISON_OPS.get
        while True:
            at = self.pos
            op = ops_get(codes[at])
            if op is None:
                return left
            self.pos = at + 1
            right = self.parse_additive()
            left = BinOp(op, left, right, line=self.lines[at], column=self.columns[at])

    def parse_additive(self) -> Expr:
        left = self.parse_multiplicative()
        codes = self.codes
        ops_get = _ADDITIVE_OPS.get
        while True:
            at = self.pos
            op = ops_get(codes[at])
            if op is None:
                return left
            self.pos = at + 1
            right = self.parse_multiplicative()
            left = BinOp(op, left, right, line=self.lines[at], column=self.columns[at])

    def parse_multiplicative(self) -> Expr:
        left = self.parse_unary()
        codes = self.codes
        ops_get = _MULTIPLICATIVE_OPS.get
        while True:
            at = self.pos
            op = ops_get(codes[at])
            if op is None:
                return left
            self.pos = at + 1
            right = self.parse_unary()
            left = BinOp(op, left, right, line=self.lines[at], column=self.columns[at])

    def parse_unary(self) -> Expr:
        at = self.pos
        if self.codes[at] == _MINUS_C:
            self.pos = at + 1
            operand = self.parse_unary()
            return UnOp("-", operand, line=self.lines[at], column=self.columns[at])
        return self.parse_primary()

    def parse_primary(self) -> Expr:
        pos = self.pos
        code = self.codes[pos]
        if code == _IDENT_C:
            return self.parse_lvalue()
        if code == _INT_C:
            self.pos = pos + 1
            return IntLit(
                self.values[pos], line=self.lines[pos], column=self.columns[pos]
            )
        if code == _LPAREN_C:
            self.pos = pos + 1
            inner = self.parse_expr()
            self.expect(TokenKind.RPAREN, "parenthesized expression")
            return inner
        raise ParseError(
            "expected expression, found %s" % KIND_BY_CODE[code].value,
            self.lines[pos],
            self.columns[pos],
        )


def parse_token_stream(stream: TokenStream) -> Program:
    """Parse an already-scanned :class:`TokenStream` (as produced by
    :func:`repro.lang.lexer.tokenize_stream`).

    This is the entry point for callers that time or cache the lex phase
    separately from the parse phase.
    """
    return _Parser(stream).parse_program()


def parse_program(source: str) -> Program:
    """Parse CK source text into a :class:`Program` AST (unresolved)."""
    return _Parser(tokenize_stream(source)).parse_program()
