"""Pretty-printer (unparser) for CK ASTs.

``parse_program(pretty(ast))`` is an identity up to source positions —
the round-trip property the test suite checks, and what lets the random
program generator emit both ASTs and source text from one description.
"""

from __future__ import annotations

from typing import List

from repro.lang.nodes import (
    Assign,
    BinOp,
    CallStmt,
    Expr,
    For,
    If,
    IntLit,
    Print,
    ProcDecl,
    Program,
    Read,
    Return,
    Stmt,
    UnOp,
    VarDecl,
    VarRef,
    While,
)

# Binding strength used to decide where parentheses are required.
_PRECEDENCE = {
    "or": 1,
    "and": 2,
    "=": 4,
    "!=": 4,
    "<": 4,
    "<=": 4,
    ">": 4,
    ">=": 4,
    "+": 5,
    "-": 5,
    "*": 6,
    "/": 6,
    "div": 6,
    "mod": 6,
}

_UNARY_PRECEDENCE = {"not": 3, "-": 7}


def format_expr(expr: Expr, parent_precedence: int = 0) -> str:
    """Render an expression, inserting parentheses only where needed."""
    if isinstance(expr, IntLit):
        return str(expr.value)
    if isinstance(expr, VarRef):
        text = expr.name
        for index in expr.indices:
            text += "[%s]" % format_expr(index)
        return text
    if isinstance(expr, BinOp):
        precedence = _PRECEDENCE[expr.op]
        left = format_expr(expr.left, precedence)
        # Right operand binds one tighter: operators are left-associative.
        right = format_expr(expr.right, precedence + 1)
        text = "%s %s %s" % (left, expr.op, right)
        if precedence < parent_precedence:
            return "(%s)" % text
        return text
    if isinstance(expr, UnOp):
        precedence = _UNARY_PRECEDENCE[expr.op]
        operand = format_expr(expr.operand, precedence)
        text = ("%s %s" if expr.op == "not" else "%s%s") % (expr.op, operand)
        if precedence < parent_precedence:
            return "(%s)" % text
        return text
    raise TypeError("unknown expression node %r" % (expr,))


def _format_var_decl(decl: VarDecl) -> str:
    if decl.is_array:
        return "array %s%s" % (decl.name, "".join("[%d]" % d for d in decl.dims))
    return decl.name


def _emit_statements(body: List[Stmt], out: List[str], indent: int) -> None:
    pad = "  " * indent
    for stmt in body:
        if isinstance(stmt, Assign):
            out.append("%s%s := %s" % (pad, format_expr(stmt.target), format_expr(stmt.value)))
        elif isinstance(stmt, CallStmt):
            args = ", ".join(format_expr(arg) for arg in stmt.args)
            out.append("%scall %s(%s)" % (pad, stmt.callee, args))
        elif isinstance(stmt, If):
            out.append("%sif %s then" % (pad, format_expr(stmt.cond)))
            _emit_statements(stmt.then_body, out, indent + 1)
            if stmt.else_body:
                out.append("%selse" % pad)
                _emit_statements(stmt.else_body, out, indent + 1)
            out.append("%send" % pad)
        elif isinstance(stmt, While):
            out.append("%swhile %s do" % (pad, format_expr(stmt.cond)))
            _emit_statements(stmt.body, out, indent + 1)
            out.append("%send" % pad)
        elif isinstance(stmt, For):
            out.append(
                "%sfor %s := %s to %s do"
                % (pad, stmt.var.name, format_expr(stmt.lo), format_expr(stmt.hi))
            )
            _emit_statements(stmt.body, out, indent + 1)
            out.append("%send" % pad)
        elif isinstance(stmt, Return):
            out.append("%sreturn" % pad)
        elif isinstance(stmt, Read):
            out.append("%sread %s" % (pad, format_expr(stmt.target)))
        elif isinstance(stmt, Print):
            out.append("%sprint %s" % (pad, ", ".join(format_expr(v) for v in stmt.values)))
        else:
            raise TypeError("unknown statement node %r" % (stmt,))


def _emit_proc(decl: ProcDecl, out: List[str], indent: int) -> None:
    pad = "  " * indent
    out.append("%sproc %s(%s)" % (pad, decl.name, ", ".join(decl.params)))
    for var_decl in decl.locals:
        out.append("%s  local %s" % (pad, _format_var_decl(var_decl)))
    for nested in decl.nested:
        _emit_proc(nested, out, indent + 1)
    out.append("%sbegin" % pad)
    _emit_statements(decl.body, out, indent + 1)
    out.append("%send" % pad)


def pretty(program: Program) -> str:
    """Render a program AST back to parseable CK source text."""
    out: List[str] = ["program %s" % program.name]
    for decl in program.globals:
        out.append("  global %s" % _format_var_decl(decl))
    if program.globals:
        out.append("")
    for proc in program.procs:
        _emit_proc(proc, out, 1)
        out.append("")
    out.append("begin")
    _emit_statements(program.body, out, 1)
    out.append("end")
    return "\n".join(out) + "\n"
