"""T1–T2 reducibility testing for call graphs.

Why this exists: the swift algorithm and the elimination frameworks it
builds on (Tarjan's path compression, Graham–Wegman) state their fast
bounds **for reducible graphs** — and call graphs, unlike structured
control-flow graphs, are routinely irreducible (mutual recursion
entered from two places).  The paper's closing claim for both new
algorithms is that "neither algorithm relies on the assumption of
reducibility".  This module lets the tests and benchmarks *measure*
that: classify workloads as reducible or not, and confirm the Figure 1
/ Figure 2 algorithms agree with the reference solvers on the
irreducible ones.

Classification is by Hecht–Ullman T1–T2 reduction over the subgraph
reachable from the entry:

* **T1**: remove a self-loop;
* **T2**: if node ``n ≠ entry`` has exactly one predecessor ``p``,
  collapse ``n`` into ``p``.

A graph is reducible iff the transformations shrink it to the single
entry node.  The implementation keeps predecessor/successor sets and a
worklist of T2 candidates; each collapse is O(degree), giving the usual
near-linear behaviour on call-graph-sized inputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set

from repro.graphs.callgraph import CallMultiGraph
from repro.graphs.dfs import reachable_from


@dataclass
class ReductionResult:
    """Outcome of T1–T2 reduction."""

    reducible: bool
    #: Nodes remaining when no transformation applies (1 if reducible).
    residual_nodes: int
    #: Total T1 (self-loop) removals performed.
    t1_count: int
    #: Total T2 (unique-predecessor merge) collapses performed.
    t2_count: int
    #: The irreducible core's node ids (empty if reducible).
    residual: List[int] = field(default_factory=list)


def t1_t2_reduce(num_nodes: int, successors: Sequence[Sequence[int]],
                 entry: int) -> ReductionResult:
    """Run T1–T2 to a fixpoint over the entry-reachable subgraph."""
    alive = reachable_from(num_nodes, successors, [entry])
    succ: Dict[int, Set[int]] = {}
    pred: Dict[int, Set[int]] = {}
    for node in range(num_nodes):
        if not alive[node]:
            continue
        succ.setdefault(node, set())
        pred.setdefault(node, set())
        for target in successors[node]:
            if not alive[target]:
                continue
            succ[node].add(target)
            pred.setdefault(target, set()).add(node)

    t1_count = 0
    t2_count = 0
    # T1 first pass: drop self-loops.
    for node in list(succ):
        if node in succ[node]:
            succ[node].discard(node)
            pred[node].discard(node)
            t1_count += 1

    worklist = [node for node in succ if node != entry and len(pred[node]) == 1]
    in_work = set(worklist)
    while worklist:
        node = worklist.pop()
        in_work.discard(node)
        if node not in succ or node == entry:
            continue
        if len(pred[node]) != 1:
            continue
        parent = next(iter(pred[node]))
        # Collapse node into parent.
        parent_succ = succ[parent]
        parent_succ.discard(node)
        for target in succ[node]:
            pred[target].discard(node)
            if target == parent:
                # Collapsing makes this a self-loop on parent: T1.
                t1_count += 1
                continue
            parent_succ.add(target)
            pred[target].add(parent)
            if target != entry and len(pred[target]) == 1 and target not in in_work:
                worklist.append(target)
                in_work.add(target)
        del succ[node]
        del pred[node]
        t2_count += 1
        # The parent may have become a T2 candidate.
        if parent != entry and len(pred[parent]) == 1 and parent not in in_work:
            worklist.append(parent)
            in_work.add(parent)
        # Targets that lost an edge may have become candidates (handled
        # above); nothing else changes.

    residual = sorted(succ)
    return ReductionResult(
        reducible=len(residual) == 1,
        residual_nodes=len(residual),
        t1_count=t1_count,
        t2_count=t2_count,
        residual=residual if len(residual) > 1 else [],
    )


def call_graph_reducible(graph: CallMultiGraph) -> ReductionResult:
    """Reducibility of a program's call multi-graph from main."""
    return t1_t2_reduce(
        graph.num_nodes, graph.successors, graph.resolved.main.pid
    )
