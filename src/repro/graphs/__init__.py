"""Graph substrates: the call multi-graph, the binding multi-graph, and
the depth-first-search / strongly-connected-component machinery both
algorithms in the paper are built on."""

from repro.graphs.scc import tarjan_scc, Condensation, condense
from repro.graphs.dfs import (
    EdgeKind,
    classify_edges,
    reachable_from,
)
from repro.graphs.callgraph import CallMultiGraph, build_call_graph
from repro.graphs.binding import BindingMultiGraph, build_binding_graph
from repro.graphs.reducibility import ReductionResult, call_graph_reducible, t1_t2_reduce

__all__ = [
    "tarjan_scc",
    "Condensation",
    "condense",
    "EdgeKind",
    "classify_edges",
    "reachable_from",
    "CallMultiGraph",
    "build_call_graph",
    "BindingMultiGraph",
    "build_binding_graph",
    "ReductionResult",
    "call_graph_reducible",
    "t1_t2_reduce",
]
