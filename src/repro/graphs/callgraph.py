"""The program call multi-graph ``C = (N_C, E_C)``.

One node per procedure (including the main program at node 0), one
edge per call site — so two distinct calls from ``p`` to ``q`` are two
parallel edges, exactly as in the paper.  All of the complexity bounds
(``O(N_C + E_C)`` etc.) are stated against this graph's size.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

from repro.graphs.dfs import reachable_from
from repro.lang.symbols import CallSite, ProcSymbol, ResolvedProgram


@dataclass
class CallMultiGraph:
    """Call multi-graph over procedure ids (``pid``)."""

    resolved: ResolvedProgram
    #: successors[pid] -> list of callee pids, one entry per call site.
    successors: List[List[int]] = field(default_factory=list)
    #: edge_sites[pid] -> the CallSite records aligned with successors[pid].
    edge_sites: List[List[CallSite]] = field(default_factory=list)
    #: predecessors[pid] -> list of caller pids, one entry per call site.
    predecessors: List[List[int]] = field(default_factory=list)

    @property
    def num_nodes(self) -> int:
        """``N_C`` — the number of procedures."""
        return len(self.successors)

    @property
    def num_edges(self) -> int:
        """``E_C`` — the number of call sites."""
        return sum(len(out) for out in self.successors)

    def procs(self) -> List[ProcSymbol]:
        return self.resolved.procs

    def proc(self, pid: int) -> ProcSymbol:
        return self.resolved.procs[pid]

    def reachable_procs(self, roots: Optional[Sequence[int]] = None) -> List[bool]:
        """Which procedures are reachable by some call chain from the
        roots (default: the main program).  Section 3.3's linear-time
        unreachable-procedure elimination."""
        if roots is None:
            roots = [self.resolved.main.pid]
        return reachable_from(self.num_nodes, self.successors, roots)

    def unreachable_procs(self) -> List[ProcSymbol]:
        reachable = self.reachable_procs()
        return [proc for proc in self.resolved.procs if not reachable[proc.pid]]

    def to_csr(self) -> "Tuple[List[int], List[int], List[int]]":
        """Flatten to CSR arrays ``(heads, succ, edge_site)``.

        ``succ[heads[p]:heads[p+1]]`` lists ``p``'s callee pids in the
        same order as ``successors[p]``; ``edge_site`` is aligned with
        ``succ`` and holds each edge's ``site_id``.
        """
        heads = [0] * (self.num_nodes + 1)
        succ: List[int] = []
        edge_site: List[int] = []
        for pid, (targets, sites) in enumerate(
            zip(self.successors, self.edge_sites)
        ):
            succ.extend(targets)
            edge_site.extend(site.site_id for site in sites)
            heads[pid + 1] = len(succ)
        return heads, succ, edge_site

    def to_dot(self) -> str:
        """Render the graph in Graphviz DOT format."""
        lines = ["digraph callgraph {"]
        for proc in self.resolved.procs:
            lines.append('  n%d [label="%s"];' % (proc.pid, proc.qualified_name))
        for pid, (targets, sites) in enumerate(zip(self.successors, self.edge_sites)):
            for target, site in zip(targets, sites):
                lines.append('  n%d -> n%d [label="s%d"];' % (pid, target, site.site_id))
        lines.append("}")
        return "\n".join(lines)


def build_call_graph(resolved: ResolvedProgram) -> CallMultiGraph:
    """Construct the call multi-graph in ``O(N_C + E_C)``."""
    num_procs = resolved.num_procs
    graph = CallMultiGraph(
        resolved=resolved,
        successors=[[] for _ in range(num_procs)],
        edge_sites=[[] for _ in range(num_procs)],
        predecessors=[[] for _ in range(num_procs)],
    )
    for site in resolved.call_sites:
        graph.successors[site.caller.pid].append(site.callee.pid)
        graph.edge_sites[site.caller.pid].append(site)
        graph.predecessors[site.callee.pid].append(site.caller.pid)
    return graph
