"""Depth-first-search utilities: edge classification and reachability.

``findgmod`` (Figure 2) distinguishes tree, forward, back, and cross
edges of the call graph's DFS forest; :func:`classify_edges` reproduces
that classification for tests and instrumentation.  Section 3.3 of the
paper assumes unreachable procedures have been eliminated by "a
linear-time algorithm" — :func:`reachable_from` is that algorithm.
"""

from __future__ import annotations

import enum
from typing import Iterable, List, Sequence, Set, Tuple


class EdgeKind(enum.Enum):
    """DFS edge classification relative to a depth-first forest."""

    TREE = "tree"
    FORWARD = "forward"
    BACK = "back"
    CROSS = "cross"


def reachable_from(num_nodes: int, successors: Sequence[Sequence[int]],
                   roots: Iterable[int]) -> List[bool]:
    """Nodes reachable from ``roots`` (inclusive), in ``O(N + E)``."""
    reachable = [False] * num_nodes
    stack = []
    for root in roots:
        if not reachable[root]:
            reachable[root] = True
            stack.append(root)
    while stack:
        node = stack.pop()
        for succ in successors[node]:
            if not reachable[succ]:
                reachable[succ] = True
                stack.append(succ)
    return reachable


def classify_edges(num_nodes: int, successors: Sequence[Sequence[int]],
                   roots: Iterable[int]) -> Tuple[List[int], List[Tuple[int, int, EdgeKind]]]:
    """DFS from ``roots`` (then any unvisited node), classifying edges.

    Returns ``(dfn, edges)`` where ``dfn[v]`` is the 1-based discovery
    number (0 if unreachable, which cannot happen since every node is
    eventually used as a root) and ``edges`` lists
    ``(source, target, kind)`` for every multi-edge in DFS visit order.

    Classification, matching the conventions Figure 2 relies on:

    * unvisited target — TREE;
    * visited target that is an ancestor still on the DFS spine — BACK;
    * visited descendant (``dfn`` greater than the source's) — FORWARD;
    * otherwise — CROSS.
    """
    dfn = [0] * num_nodes
    finished = [False] * num_nodes
    on_spine = [False] * num_nodes
    edges: List[Tuple[int, int, EdgeKind]] = []
    next_dfn = 1

    all_roots = list(roots) + [node for node in range(num_nodes)]
    for root in all_roots:
        if dfn[root] != 0:
            continue
        dfn[root] = next_dfn
        next_dfn += 1
        on_spine[root] = True
        work: List[List[object]] = [[root, iter(successors[root])]]
        while work:
            node, succ_iter = work[-1]
            advanced = False
            for succ in succ_iter:
                if dfn[succ] == 0:
                    edges.append((node, succ, EdgeKind.TREE))
                    dfn[succ] = next_dfn
                    next_dfn += 1
                    on_spine[succ] = True
                    work.append([succ, iter(successors[succ])])
                    advanced = True
                    break
                if on_spine[succ]:
                    edges.append((node, succ, EdgeKind.BACK))
                elif dfn[succ] > dfn[node]:
                    edges.append((node, succ, EdgeKind.FORWARD))
                else:
                    edges.append((node, succ, EdgeKind.CROSS))
            if not advanced:
                work.pop()
                on_spine[node] = False
                finished[node] = True
    return dfn, edges
