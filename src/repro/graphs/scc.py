"""Tarjan's strongly-connected-components algorithm and condensation.

This is the workhorse under both of the paper's algorithms: Figure 1
(``RMOD`` over the binding multi-graph) condenses SCCs and sweeps the
derived DAG leaves-to-roots, and Figure 2 (``findgmod``) is a direct
adaptation of Tarjan's algorithm itself.

The implementation is **iterative** (explicit stack) so that the deep
recursive call chains produced by the workload generators — tens of
thousands of nodes — do not hit Python's recursion limit.

Graphs are represented minimally: ``num_nodes`` and an adjacency list
``successors[node] -> iterable of nodes``.  Parallel edges and
self-loops are permitted (both graphs in the paper are multi-graphs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Set, Tuple


def tarjan_scc(num_nodes: int, successors: Sequence[Sequence[int]]) -> Tuple[List[int], List[List[int]]]:
    """Compute strongly connected components.

    Returns ``(component_of, components)`` where ``component_of[v]`` is
    the component index of node ``v`` and ``components[i]`` lists the
    members of component ``i``.

    Components are emitted in **reverse topological order** of the
    condensation: if any edge runs from component ``a`` to component
    ``b`` (``a != b``) then ``b`` appears before ``a`` in
    ``components``.  This is exactly the leaves-to-roots order that
    Figure 1, step (3) of the paper requires.
    """
    index_of = [-1] * num_nodes  # Discovery index; -1 = unvisited.
    lowlink = [0] * num_nodes
    on_stack = [False] * num_nodes
    component_of = [-1] * num_nodes
    stack: List[int] = []
    components: List[List[int]] = []
    counter = 0

    for root in range(num_nodes):
        if index_of[root] != -1:
            continue
        # Iterative DFS: each frame is [node, iterator over successors].
        work: List[List[object]] = [[root, iter(successors[root])]]
        index_of[root] = lowlink[root] = counter
        counter += 1
        stack.append(root)
        on_stack[root] = True
        while work:
            node, succ_iter = work[-1]
            advanced = False
            for succ in succ_iter:
                if index_of[succ] == -1:
                    index_of[succ] = lowlink[succ] = counter
                    counter += 1
                    stack.append(succ)
                    on_stack[succ] = True
                    work.append([succ, iter(successors[succ])])
                    advanced = True
                    break
                if on_stack[succ]:
                    if index_of[succ] < lowlink[node]:
                        lowlink[node] = index_of[succ]
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                if lowlink[node] < lowlink[parent]:
                    lowlink[parent] = lowlink[node]
            if lowlink[node] == index_of[node]:
                component: List[int] = []
                while True:
                    member = stack.pop()
                    on_stack[member] = False
                    component_of[member] = len(components)
                    component.append(member)
                    if member == node:
                        break
                components.append(component)
    return component_of, components


def tarjan_scc_csr(
    num_nodes: int, heads: Sequence[int], succ: Sequence[int]
) -> Tuple[List[int], List[List[int]]]:
    """:func:`tarjan_scc` over a CSR adjacency (``heads``/``succ`` flat
    arrays, node ``n``'s successors at ``succ[heads[n]:heads[n+1]]``).

    Successors are visited in the same order as the list-of-lists form,
    so the output — including the reverse topological component order —
    is identical to ``tarjan_scc`` on the equivalent adjacency.  The
    arena's shared condensations rely on that: a solver may consume
    either form and see the same components.
    """
    index_of = [-1] * num_nodes
    lowlink = [0] * num_nodes
    on_stack = [False] * num_nodes
    component_of = [-1] * num_nodes
    stack: List[int] = []
    components: List[List[int]] = []
    counter = 0

    for root in range(num_nodes):
        if index_of[root] != -1:
            continue
        work: List[List[object]] = [[root, iter(succ[heads[root]:heads[root + 1]])]]
        index_of[root] = lowlink[root] = counter
        counter += 1
        stack.append(root)
        on_stack[root] = True
        while work:
            node, succ_iter = work[-1]
            advanced = False
            for target in succ_iter:
                if index_of[target] == -1:
                    index_of[target] = lowlink[target] = counter
                    counter += 1
                    stack.append(target)
                    on_stack[target] = True
                    work.append(
                        [target, iter(succ[heads[target]:heads[target + 1]])]
                    )
                    advanced = True
                    break
                if on_stack[target]:
                    if index_of[target] < lowlink[node]:
                        lowlink[node] = index_of[target]
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                if lowlink[node] < lowlink[parent]:
                    lowlink[parent] = lowlink[node]
            if lowlink[node] == index_of[node]:
                component: List[int] = []
                while True:
                    member = stack.pop()
                    on_stack[member] = False
                    component_of[member] = len(components)
                    component.append(member)
                    if member == node:
                        break
                components.append(component)
    return component_of, components


@dataclass
class Condensation:
    """The DAG of strongly connected components of a multi-graph.

    ``components`` is in reverse topological order (see
    :func:`tarjan_scc`), so iterating it forwards processes callees
    before callers — the natural order for bottom-up summary
    propagation.  ``successors[c]`` holds the distinct successor
    components of ``c`` (parallel edges and intra-component edges
    dropped).
    """

    component_of: List[int]
    components: List[List[int]]
    successors: List[List[int]]

    @property
    def num_components(self) -> int:
        return len(self.components)

    def is_trivial(self, component: int) -> bool:
        """True when the component is a single node without a self-loop
        edge (checked structurally by the builder)."""
        return len(self.components[component]) == 1

    def topological_order(self) -> List[int]:
        """Component indices, roots first (callers before callees)."""
        return list(range(self.num_components))[::-1]


def condense(num_nodes: int, successors: Sequence[Sequence[int]]) -> Condensation:
    """Build the SCC condensation of a multi-graph.

    Runs in ``O(N + E)``: one Tarjan pass plus one edge sweep that
    deduplicates cross-component edges with a last-seen marker.
    """
    component_of, components = tarjan_scc(num_nodes, successors)
    num_components = len(components)
    comp_successors: List[List[int]] = [[] for _ in range(num_components)]
    last_seen = [-1] * num_components
    for comp_index in range(num_components):
        for node in components[comp_index]:
            for succ in successors[node]:
                succ_comp = component_of[succ]
                if succ_comp == comp_index:
                    continue
                if last_seen[succ_comp] != comp_index:
                    last_seen[succ_comp] = comp_index
                    comp_successors[comp_index].append(succ_comp)
    return Condensation(
        component_of=component_of,
        components=components,
        successors=comp_successors,
    )
