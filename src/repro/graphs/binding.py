"""The binding multi-graph ``β = (N_β, E_β)`` — Section 3 of the paper.

Nodes represent the formal parameters of the program's procedures (the
paper writes the third formal of procedure ``p`` as ``fp3^p``).  There
is an edge ``(fp_i^p, fp_j^q)`` for every *binding event*: a call site
that passes a variable whose **defining occurrence is a formal of p**
as the actual in position ``j`` of a call to ``q``.

Two details from the paper are honoured:

* **Multi-edges** (Section 3.1): ``p`` may bind the same formal pair at
  several call sites, so β is a multi-graph; every event is kept.
* **Lexical nesting** (Section 3.3, point 2): the call site need not be
  textually in ``p`` — it may sit in a procedure nested within ``p``.
  Ordinary lexical resolution of the actual (done once, in semantic
  analysis) already identifies the defining procedure, so the edge's
  source is the formal's owner, not the caller.

A subscripted actual whose base is a formal array also produces an
edge: the formal is a unitary object in this framework, and modifying
the callee's formal modifies (part of) the caller's.

Node accounting follows Section 3.1: ``nodes_with_edges`` counts only
formals incident to at least one edge ("the construction need not
represent a node unless it is the endpoint of an edge"), which is what
the ``2·Eβ ≥ Nβ`` inequality is stated against.  The solvers still
produce answers for *every* formal — isolated formals simply keep
their initial values.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.lang.symbols import CallSite, ResolvedProgram, VarSymbol


@dataclass(frozen=True)
class BindingEdge:
    """One binding event ``(source formal) -> (target formal)``."""

    source: VarSymbol  # A formal of some procedure p.
    target: VarSymbol  # The formal it is bound to at the call site.
    site: CallSite
    position: int  # Argument position at the call site.
    subscripted: bool  # True when the actual selects an array element.


@dataclass
class BindingMultiGraph:
    """β with dense node indices over the program's formal parameters."""

    resolved: ResolvedProgram
    #: All formal parameters, indexed by dense β-node id.
    formals: List[VarSymbol] = field(default_factory=list)
    #: VarSymbol.uid -> dense β-node id.
    node_of_uid: Dict[int, int] = field(default_factory=dict)
    #: successors[node] -> target node ids (one entry per binding event).
    successors: List[List[int]] = field(default_factory=list)
    #: Full edge records (edge list), or ``None`` when built lazily —
    #: the incremental arena patch derives ``successors`` straight from
    #: its flat binding tables and only materializes the ``BindingEdge``
    #: objects if a consumer (DOT rendering, the sections solver)
    #: actually asks for them.
    _edges: Optional[List[BindingEdge]] = None

    @property
    def edges(self) -> List[BindingEdge]:
        """Full edge records aligned with nothing in particular."""
        if self._edges is None:
            self._edges = list(_binding_events(self.resolved))
        return self._edges

    @property
    def num_formals(self) -> int:
        """Total formals in the program (isolated nodes included)."""
        return len(self.formals)

    @property
    def num_edges(self) -> int:
        """``Eβ`` — the number of binding events."""
        return len(self.edges)

    @property
    def nodes_with_edges(self) -> int:
        """``Nβ`` in the paper's accounting: formals incident to >= 1
        edge (the construction need not represent the rest)."""
        incident: Set[int] = set()
        for edge in self.edges:
            incident.add(self.node_of(edge.source))
            incident.add(self.node_of(edge.target))
        return len(incident)

    def node_of(self, formal: VarSymbol) -> int:
        return self.node_of_uid[formal.uid]

    def formal_at(self, node: int) -> VarSymbol:
        return self.formals[node]

    def to_csr(self) -> Tuple[List[int], List[int], List[int]]:
        """Flatten to CSR arrays ``(heads, succ, edge_site)``.

        ``succ[heads[n]:heads[n+1]]`` lists node ``n``'s targets in the
        same order as ``successors[n]``; ``edge_site`` is aligned with
        ``succ`` and holds the originating call site's ``site_id``.
        """
        site_of: Dict[Tuple[int, int], List[int]] = {}
        for edge in self.edges:
            key = (self.node_of(edge.source), self.node_of(edge.target))
            site_of.setdefault(key, []).append(edge.site.site_id)
        heads = [0] * (self.num_formals + 1)
        succ: List[int] = []
        edge_site: List[int] = []
        taken: Dict[Tuple[int, int], int] = {}
        for node, targets in enumerate(self.successors):
            for target in targets:
                key = (node, target)
                index = taken.get(key, 0)
                taken[key] = index + 1
                succ.append(target)
                edge_site.append(site_of[key][index])
            heads[node + 1] = len(succ)
        return heads, succ, edge_site

    def to_dot(self) -> str:
        """Render β in Graphviz DOT format (node labels are fp_i^p)."""
        lines = ["digraph binding {"]
        for node, formal in enumerate(self.formals):
            label = "fp%d^%s" % (formal.position + 1, formal.proc.qualified_name)
            lines.append('  n%d [label="%s"];' % (node, label))
        for edge in self.edges:
            lines.append(
                '  n%d -> n%d [label="s%d"];'
                % (self.node_of(edge.source), self.node_of(edge.target), edge.site.site_id)
            )
        lines.append("}")
        return "\n".join(lines)


def _binding_events(resolved: ResolvedProgram):
    """Every binding event, in call-site then binding order — the one
    definition of β's edge sequence, shared by the eager construction
    and the lazy ``edges`` materialization so both agree exactly."""
    for site in resolved.call_sites:
        formals = site.callee.formals
        for binding in site.bindings:
            if not binding.by_reference:
                continue
            base = binding.base
            if base is None or not base.is_formal:
                continue
            yield BindingEdge(
                source=base,
                target=formals[binding.position],
                site=site,
                position=binding.position,
                subscripted=binding.subscripted,
            )


def build_binding_graph(resolved: ResolvedProgram) -> BindingMultiGraph:
    """Construct β in time linear in its size (one sweep of the call
    sites, Section 3.1)."""
    graph = BindingMultiGraph(resolved=resolved, _edges=[])
    for proc in resolved.procs:
        for formal in proc.formals:
            graph.node_of_uid[formal.uid] = len(graph.formals)
            graph.formals.append(formal)
    graph.successors = [[] for _ in range(len(graph.formals))]

    for edge in _binding_events(resolved):
        graph._edges.append(edge)
        graph.successors[graph.node_of(edge.source)].append(
            graph.node_of(edge.target)
        )
    return graph
