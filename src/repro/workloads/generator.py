"""Random CK program generator.

Generates semantically valid programs whose structural parameters are
the ones the paper's complexity claims are stated in:

* ``num_procs`` → ``N_C`` (plus one for main);
* ``calls_per_proc`` → ``E_C ≈ N_C · calls_per_proc``;
* ``formals_range`` → ``µ_f`` (and ``c_P``, the per-procedure maximum);
* argument-kind probabilities → ``µ_a`` and the density of β edges;
* ``max_depth`` / ``nesting_prob`` → ``d_P``;
* ``allow_recursion`` → whether the call multi-graph has cycles.

Every generated program is closed under the front end's rules: all
names resolve, all arities match, all call targets are lexically
visible, and (when ``ensure_reachable`` is set) every procedure is
reachable from main — the precondition Section 3.3 assumes.

Generation is deterministic in ``seed``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.lang.nodes import (
    Assign,
    BinOp,
    CallStmt,
    Expr,
    If,
    IntLit,
    ProcDecl,
    Program,
    Stmt,
    VarDecl,
    VarRef,
    While,
)
from repro.lang.semantic import analyze
from repro.lang.symbols import ResolvedProgram


@dataclass
class GeneratorConfig:
    """Tunable structure for :func:`generate_program`."""

    seed: int = 0
    num_procs: int = 20
    num_globals: int = 8
    #: Maximum procedure nesting level (1 = flat, C/Fortran-style).
    max_depth: int = 1
    #: Probability that a procedure nests inside an earlier procedure
    #: (only meaningful when max_depth > 1).
    nesting_prob: float = 0.5
    formals_range: Tuple[int, int] = (1, 4)
    locals_range: Tuple[int, int] = (0, 2)
    calls_per_proc_range: Tuple[int, int] = (1, 3)
    #: Actual-argument kind probabilities; the remainder is a by-value
    #: constant.  prob_arg_formal controls the density of β edges.
    prob_arg_formal: float = 0.45
    prob_arg_global: float = 0.2
    prob_arg_local: float = 0.2
    #: Probability that each formal is assigned somewhere in its body
    #: (seeds IMOD on β nodes).
    prob_modify_formal: float = 0.35
    #: Expected number of distinct globals assigned per procedure.
    globals_modified_per_proc: float = 1.0
    #: Probability that each local is assigned in the body.
    prob_modify_local: float = 0.5
    #: Allow cyclic call structure (recursion / mutual recursion).
    allow_recursion: bool = True
    #: Probability that a call targets a proc that may close a cycle
    #: (any visible proc) instead of a strictly later one.
    recursion_prob: float = 0.3
    #: Wrap some statements in `if`/`while` for interpreter realism.
    control_flow_prob: float = 0.25
    #: Add calls so every procedure is reachable from main.
    ensure_reachable: bool = True
    #: Fraction of globals declared as (small 2-D) arrays.
    array_global_fraction: float = 0.0
    #: Large-scale mode: pick callees by preferential attachment so
    #: the call multi-graph is scale-free (a few hub procedures with
    #: high in-degree, a long tail of leaves) — the realistic shape
    #: for 1k–50k-procedure programs.  Only applies to flat programs
    #: (``max_depth == 1``); nested structure falls back to the
    #: uniform picker.
    scale_free: bool = False


@dataclass
class _ProcInfo:
    index: int
    name: str
    decl: ProcDecl
    parent: Optional["_ProcInfo"]
    depth: int  # Nesting level (1 for top-level).
    formals: List[str] = field(default_factory=list)
    locals: List[str] = field(default_factory=list)
    children: List["_ProcInfo"] = field(default_factory=list)

    def chain(self) -> List["_ProcInfo"]:
        node, out = self, []
        while node is not None:
            out.append(node)
            node = node.parent
        return out


class _Generator:
    def __init__(self, config: GeneratorConfig):
        self.config = config
        self.rng = random.Random(config.seed)
        self.globals: List[VarDecl] = []
        self.procs: List[_ProcInfo] = []
        #: Preferential-attachment pool for scale-free mode: each proc
        #: index appears once per incoming call plus once at birth, so
        #: sampling the list uniformly is degree-proportional in O(1).
        self._attachment: List[int] = []

    # -- structure ------------------------------------------------------------

    def build_structure(self) -> None:
        config = self.config
        for index in range(config.num_globals):
            if self.rng.random() < config.array_global_fraction:
                self.globals.append(VarDecl(name="g%d" % index, dims=(8, 8)))
            else:
                self.globals.append(VarDecl(name="g%d" % index))

        for index in range(config.num_procs):
            parent: Optional[_ProcInfo] = None
            if (
                config.max_depth > 1
                and self.procs
                and self.rng.random() < config.nesting_prob
            ):
                candidates = [p for p in self.procs if p.depth < config.max_depth]
                if candidates:
                    parent = self.rng.choice(candidates)
            depth = 1 if parent is None else parent.depth + 1
            decl = ProcDecl(name="p%d" % index)
            info = _ProcInfo(index=index, name=decl.name, decl=decl, parent=parent, depth=depth)
            num_formals = self.rng.randint(*config.formals_range)
            for position in range(num_formals):
                formal = "f%d" % position
                decl.params.append(formal)
                info.formals.append(formal)
            num_locals = self.rng.randint(*config.locals_range)
            for position in range(num_locals):
                local = "v%d" % position
                decl.locals.append(VarDecl(name=local))
                info.locals.append(local)
            if parent is None:
                pass  # Attached to the Program at assembly time.
            else:
                parent.decl.nested.append(decl)
                parent.children.append(info)
            self.procs.append(info)

    def visible_procs(self, info: Optional[_ProcInfo]) -> List[_ProcInfo]:
        """Call targets lexically visible from ``info`` (None = main)."""
        visible: List[_ProcInfo] = []
        if info is None:
            return [p for p in self.procs if p.parent is None]
        visible.extend(info.children)
        node: Optional[_ProcInfo] = info
        while node is not None:
            siblings = node.parent.children if node.parent else [
                p for p in self.procs if p.parent is None
            ]
            visible.extend(siblings)
            node = node.parent
        return visible

    # -- expressions / arguments -----------------------------------------------

    def scalar_globals(self) -> List[str]:
        return [g.name for g in self.globals if not g.is_array]

    def pick_argument(self, caller: Optional[_ProcInfo]) -> Expr:
        """An actual argument for a call made from ``caller``."""
        config = self.config
        roll = self.rng.random()
        if caller is not None:
            # Visible formals: caller's own and its lexical ancestors'
            # (the §3.3 cross-nest binding case).
            visible_formals = []
            for node in caller.chain():
                visible_formals.extend(node.formals)
            if roll < config.prob_arg_formal and visible_formals:
                return VarRef(self.rng.choice(visible_formals))
            roll -= config.prob_arg_formal
            if roll < config.prob_arg_local and caller.locals:
                return VarRef(self.rng.choice(caller.locals))
            roll -= config.prob_arg_local
        scalars = self.scalar_globals()
        if roll < config.prob_arg_global and scalars:
            return VarRef(self.rng.choice(scalars))
        return IntLit(self.rng.randint(0, 9))

    def simple_rhs(self, caller: Optional[_ProcInfo]) -> Expr:
        """A small arithmetic right-hand side over visible scalars."""
        names: List[str] = []
        if caller is not None:
            names.extend(caller.formals)
            names.extend(caller.locals)
        names.extend(self.scalar_globals())
        if names and self.rng.random() < 0.7:
            base: Expr = VarRef(self.rng.choice(names))
            if self.rng.random() < 0.5:
                return BinOp("+", base, IntLit(self.rng.randint(0, 3)))
            return base
        return IntLit(self.rng.randint(0, 9))

    # -- bodies ------------------------------------------------------------------

    def make_call(self, caller: Optional[_ProcInfo], callee: _ProcInfo) -> CallStmt:
        args = [self.pick_argument(caller) for _ in callee.formals]
        return CallStmt(callee=callee.name, args=args)

    def pick_callees_scale_free(self, caller: Optional[_ProcInfo]) -> List[_ProcInfo]:
        """Preferential attachment: each call targets an *earlier* proc
        with probability proportional to its in-degree (plus one), so
        hubs emerge and — recursion rolls aside — the graph stays
        acyclic by construction.  Flat programs only: every top-level
        proc is visible to every other, so any earlier index is a
        legal lexical target."""
        config, rng = self.config, self.rng
        count = rng.randint(*config.calls_per_proc_range)
        caller_index = -1 if caller is None else caller.index
        visible = self.visible_procs(caller)
        callees: List[_ProcInfo] = []
        for _ in range(count):
            if config.allow_recursion and rng.random() < config.recursion_prob:
                callees.append(rng.choice(visible))
                continue
            pick: Optional[int] = None
            pool = self._attachment
            if pool and caller_index > 0:
                for _attempt in range(4):
                    candidate = pool[rng.randrange(len(pool))]
                    if candidate < caller_index:
                        pick = candidate
                        break
            if pick is None:
                later = [p for p in visible if p.index > caller_index]
                if later:
                    callees.append(rng.choice(later))
                elif config.allow_recursion:
                    callees.append(rng.choice(visible))
                continue
            callees.append(self.procs[pick])
        for callee in callees:
            self._attachment.append(callee.index)
        return callees

    def pick_callees(self, caller: Optional[_ProcInfo]) -> List[_ProcInfo]:
        config = self.config
        if config.scale_free and config.max_depth == 1:
            return self.pick_callees_scale_free(caller)
        visible = self.visible_procs(caller)
        if not visible:
            return []
        count = self.rng.randint(*config.calls_per_proc_range)
        callees = []
        caller_index = -1 if caller is None else caller.index
        for _ in range(count):
            if config.allow_recursion and self.rng.random() < config.recursion_prob:
                callees.append(self.rng.choice(visible))
            else:
                later = [p for p in visible if p.index > caller_index]
                if later:
                    callees.append(self.rng.choice(later))
                elif config.allow_recursion:
                    callees.append(self.rng.choice(visible))
        return callees

    def wrap_control_flow(self, statements: List[Stmt],
                          caller: Optional[_ProcInfo]) -> List[Stmt]:
        """Occasionally nest statements inside `if` (never `while`, to
        keep generated programs terminating under the interpreter)."""
        out: List[Stmt] = []
        for stmt in statements:
            if self.rng.random() < self.config.control_flow_prob:
                cond = BinOp("<", self.simple_rhs(caller), IntLit(self.rng.randint(1, 9)))
                out.append(If(cond=cond, then_body=[stmt]))
            else:
                out.append(stmt)
        return out

    def fill_body(self, info: _ProcInfo) -> None:
        config = self.config
        statements: List[Stmt] = []
        for formal in info.formals:
            if self.rng.random() < config.prob_modify_formal:
                statements.append(Assign(target=VarRef(formal), value=self.simple_rhs(info)))
        for local in info.locals:
            if self.rng.random() < config.prob_modify_local:
                statements.append(Assign(target=VarRef(local), value=self.simple_rhs(info)))
        scalars = self.scalar_globals()
        if scalars:
            expected = config.globals_modified_per_proc
            count = int(expected)
            if self.rng.random() < expected - count:
                count += 1
            for name in self.rng.sample(scalars, min(count, len(scalars))):
                statements.append(Assign(target=VarRef(name), value=self.simple_rhs(info)))
        for callee in self.pick_callees(info):
            statements.append(self.make_call(info, callee))
        info.decl.body = self.wrap_control_flow(statements, info)
        # Birth occurrence: once filled, the proc is a (unit-weight)
        # attachment target for every later proc in scale-free mode.
        self._attachment.append(info.index)

    # -- assembly ---------------------------------------------------------------

    def ensure_reachability(self, program: Program) -> None:
        """Add a direct parent→child call for every procedure not
        reachable from main, so the Section 3.3 precondition holds.

        Reachability is computed for real (a procedure called only by
        itself or by other unreachable procedures is unreachable);
        processing in declaration order makes each parent reachable
        before its children are examined.
        """
        by_name = {info.name: info for info in self.procs}
        callees_of: Dict[str, List[str]] = {info.name: [] for info in self.procs}
        main_callees: List[str] = []

        def scan(body: List[Stmt], out: List[str]) -> None:
            for stmt in body:
                if isinstance(stmt, CallStmt):
                    out.append(stmt.callee)
                elif isinstance(stmt, If):
                    scan(stmt.then_body, out)
                    scan(stmt.else_body, out)
                elif isinstance(stmt, While):
                    scan(stmt.body, out)

        scan(program.body, main_callees)
        for info in self.procs:
            scan(info.decl.body, callees_of[info.name])

        reachable: set = set()

        def grow(names: List[str]) -> None:
            stack = list(names)
            while stack:
                name = stack.pop()
                if name in reachable:
                    continue
                reachable.add(name)
                stack.extend(callees_of[name])

        grow(main_callees)
        for info in self.procs:
            if info.name in reachable:
                continue
            target_body = info.parent.decl.body if info.parent else program.body
            caller = info.parent  # None means main; parents are already
            # reachable here (smaller index, handled earlier).
            target_body.append(self.make_call(caller, info))
            grow([info.name])

    def generate(self) -> Program:
        self.build_structure()
        for info in self.procs:
            self.fill_body(info)
        program = Program(name="generated")
        program.globals = self.globals
        program.procs = [info.decl for info in self.procs if info.parent is None]
        main_statements: List[Stmt] = []
        scalars = self.scalar_globals()
        for name in scalars[: min(3, len(scalars))]:
            main_statements.append(
                Assign(target=VarRef(name), value=IntLit(self.rng.randint(1, 9)))
            )
        for callee in self.pick_callees(None):
            main_statements.append(self.make_call(None, callee))
        program.body = main_statements
        self.ensure_reachability(program)
        return program


def large_scale_config(
    num_procs: int,
    seed: int = 0,
    num_globals: Optional[int] = None,
    calls_per_proc_range: Tuple[int, int] = (2, 5),
    locals_range: Tuple[int, int] = (0, 1),
) -> GeneratorConfig:
    """A scale-free, flat configuration for 1k–50k-procedure programs.

    The shape the shard benchmark and the equivalence fuzz sweep use:
    wide variable universe (many globals → long bit vectors for the
    monolithic solver), dense scale-free call structure, a pinch of
    recursion so the partitioner sees nontrivial SCCs, and no control
    flow (it is irrelevant to the side-effect problems but expensive
    to generate at this size).
    """
    if num_procs < 1:
        raise ValueError("num_procs must be >= 1, got %d" % num_procs)
    if num_globals is None:
        num_globals = max(64, num_procs // 5)
    return GeneratorConfig(
        seed=seed,
        num_procs=num_procs,
        num_globals=num_globals,
        max_depth=1,
        scale_free=True,
        formals_range=(1, 3),
        locals_range=locals_range,
        calls_per_proc_range=calls_per_proc_range,
        globals_modified_per_proc=1.5,
        allow_recursion=True,
        recursion_prob=0.05,
        control_flow_prob=0.0,
    )


def generate_program(config: GeneratorConfig) -> Program:
    """Generate a raw (unresolved) random program."""
    return _Generator(config).generate()


def generate_resolved(config: GeneratorConfig) -> ResolvedProgram:
    """Generate and run semantic analysis in one step."""
    return analyze(generate_program(config))
