"""A small corpus of hand-written, realistic CK programs.

These model the kinds of codebases the paper's introduction motivates:
Fortran-style numerical code with many globals, a Pascal-style nested
utility, and library-shaped call structures.  Tests assert concrete
analysis facts about them; examples and benchmarks reuse them as
realistic inputs.
"""

from __future__ import annotations

from typing import Dict

#: Fortran-flavoured statistics package: lots of globals, a work array,
#: helper procedures that each touch a known slice of the state.
STATS_PACKAGE = """
program stats
  global n, total, mean, varsum, variance, minval, maxval, errflag
  global array data[64]

  proc load(count)
    local i
  begin
    n := count
    for i := 0 to n - 1 do
      read data[i]
    end
  end

  proc accumulate()
    local i
  begin
    total := 0
    for i := 0 to n - 1 do
      total := total + data[i]
    end
  end

  proc center()
  begin
    if n = 0 then
      errflag := 1
    else
      mean := total / n
    end
  end

  proc spread()
    local i, d
  begin
    varsum := 0
    for i := 0 to n - 1 do
      d := data[i] - mean
      varsum := varsum + d * d
    end
    if n > 1 then
      variance := varsum / (n - 1)
    else
      errflag := 2
    end
  end

  proc extremes()
    local i
  begin
    minval := data[0]
    maxval := data[0]
    for i := 1 to n - 1 do
      if data[i] < minval then
        minval := data[i]
      end
      if data[i] > maxval then
        maxval := data[i]
      end
    end
  end

  proc summarize()
  begin
    call accumulate()
    call center()
    call spread()
    call extremes()
  end

begin
  errflag := 0
  call load(5)
  call summarize()
  print mean, variance, minval, maxval, errflag
end
"""

#: Reference-parameter library: swap/sort3/clamp utilities where all
#: data flows through formals — the RMOD showcase.
SWAP_LIBRARY = """
program swaplib
  global a, b, c, lo, hi

  proc swap(x, y)
    local t
  begin
    t := x
    x := y
    y := t
  end

  proc order2(x, y)
  begin
    if x > y then
      call swap(x, y)
    end
  end

  proc sort3(x, y, z)
  begin
    call order2(x, y)
    call order2(y, z)
    call order2(x, y)
  end

  proc clamp(v, floor, ceiling)
  begin
    if v < floor then
      v := floor
    end
    if v > ceiling then
      v := ceiling
    end
  end

begin
  a := 9
  b := 1
  c := 5
  lo := 2
  hi := 7
  call sort3(a, b, c)
  call clamp(a, lo, hi)
  print a, b, c
end
"""

#: Pascal-style nested bank ledger: the transaction helpers are nested
#: inside `session`, and they update `session`'s locals — the §3.3
#: showcase (nested procedures modifying up-level variables, and a
#: formal of the outer procedure passed onward from a nested call site).
BANK_LEDGER = """
program bank
  global balance, fees, audit

  proc log(evt)
  begin
    audit := audit + evt
  end

  proc session(amount)
    local pending, count

    proc deposit(v)
    begin
      pending := pending + v
      count := count + 1
      call log(1)
    end

    proc withdraw(v)
    begin
      if v <= pending + balance then
        pending := pending - v
        count := count + 1
        call log(2)
      else
        call penalty(amount)
      end
    end

    proc penalty(who)
    begin
      fees := fees + 1
      who := who - 1
      call log(3)
    end

  begin
    pending := 0
    count := 0
    call deposit(amount)
    call withdraw(amount + amount)
    balance := balance + pending
  end

begin
  balance := 100
  fees := 0
  audit := 0
  call session(10)
  print balance, fees, audit
end
"""

#: Mutual recursion over a global worklist — a tiny expression
#: evaluator shape (parse/term/factor), one call-graph SCC.
EVALUATOR = """
program evaluator
  global pos, value, err
  global array tokens[32]

  proc expr(depth)
    local left
  begin
    call term(depth + 1)
    left := value
    while tokens[pos] = 1 do
      pos := pos + 1
      call term(depth + 1)
      value := left + value
      left := value
    end
  end

  proc term(depth)
    local left
  begin
    call factor(depth + 1)
    left := value
    while tokens[pos] = 2 do
      pos := pos + 1
      call factor(depth + 1)
      value := left * value
      left := value
    end
  end

  proc factor(depth)
  begin
    if depth > 16 then
      err := 1
    else
      if tokens[pos] = 3 then
        pos := pos + 1
        call expr(depth + 1)
        pos := pos + 1
      else
        value := tokens[pos]
        pos := pos + 1
      end
    end
  end

begin
  tokens[0] := 5
  tokens[1] := 1
  tokens[2] := 7
  pos := 0
  err := 0
  call expr(0)
  print value, err
end
"""

#: Matrix helpers operating on global arrays through whole-array
#: reference parameters — the regular-section motivation (each helper
#: touches a row, a column, or one element).
MATRIX_TOOLS = """
program matrix
  global k, acc
  global array m[8][8]
  global array v[8]

  proc clear_row(t, r)
    local j
  begin
    for j := 0 to 7 do
      t[r][j] := 0
    end
  end

  proc set_diag(t)
    local i
  begin
    for i := 0 to 7 do
      t[i][i] := 1
    end
  end

  proc col_sum(t, c, out)
    local i
  begin
    out := 0
    for i := 0 to 7 do
      out := out + t[i][c]
    end
  end

  proc scale_vec(u, factor)
    local i
  begin
    for i := 0 to 7 do
      u[i] := u[i] * factor
    end
  end

begin
  k := 3
  call clear_row(m, k)
  call set_diag(m)
  call col_sum(m, k, acc)
  call scale_vec(v, 2)
  print acc
end
"""

#: Pascal-style task scheduler: three nesting levels, recursion that
#: crosses levels (dispatch → run_one → dispatch), and per-level state
#: — the multi-level GMOD stress case in realistic shape.
SCHEDULER = """
program scheduler
  global clock, done
  global array queue[16]

  proc dispatch(budget)
    local head, count

    proc run_one(task)
      local steps

      proc charge(amount)
      begin
        steps := steps + amount
        clock := clock + amount
        budget := budget - amount
      end

    begin
      steps := 0
      call charge(task + 1)
      if task > 2 then
        call dispatch(budget)
      end
      count := count + 1
    end

  begin
    head := 0
    count := 0
    while head < 4 and budget > 0 do
      call run_one(queue[head])
      head := head + 1
    end
    if count = 0 then
      done := 1
    end
  end

begin
  clock := 0
  done := 0
  queue[0] := 1
  queue[1] := 3
  queue[2] := 2
  call dispatch(10)
  print clock, done
end
"""

#: Text formatter over global line buffers: row/column array accesses
#: with symbolic subscripts, plus a pure helper — sections + purity in
#: one realistic program.
FORMATTER = """
program formatter
  global width, lines, dirty
  global array page[24][72]

  proc measure(len, result)
  begin
    result := len
    if result > width then
      result := width
    end
  end

  proc put_line(row, len)
    local j, n
  begin
    call measure(len, n)
    for j := 0 to n - 1 do
      page[row][j] := 1
    end
    dirty := 1
  end

  proc clear_column(col)
    local i
  begin
    for i := 0 to 23 do
      page[i][col] := 0
    end
  end

  proc render()
    local r
  begin
    for r := 0 to lines - 1 do
      call put_line(r, width)
    end
  end

begin
  width := 60
  lines := 3
  dirty := 0
  call render()
  call clear_column(71)
  print dirty
end
"""

#: Breadth-first search over a global adjacency matrix with an
#: explicit queue — array-heavy USE sets, a worklist loop, and helper
#: procedures whose effects partition cleanly.
GRAPH_BFS = """
program bfs
  global n, head, tail, found, target
  global array adj[8][8]
  global array dist[8]
  global array queue[16]

  proc enqueue(v)
  begin
    queue[tail] := v
    tail := tail + 1
  end

  proc dequeue(out)
  begin
    out := queue[head]
    head := head + 1
  end

  proc visit(u)
    local v
  begin
    for v := 0 to 7 do
      if adj[u][v] = 1 and dist[v] = 0 - 1 then
        dist[v] := dist[u] + 1
        call enqueue(v)
      end
    end
  end

  proc search(src)
    local u, i
  begin
    for i := 0 to 7 do
      dist[i] := 0 - 1
    end
    head := 0
    tail := 0
    dist[src] := 0
    call enqueue(src)
    while head < tail do
      call dequeue(u)
      if u = target then
        found := 1
      end
      call visit(u)
    end
  end

begin
  n := 8
  adj[0][1] := 1
  adj[1][2] := 1
  adj[2][5] := 1
  adj[5][7] := 1
  target := 7
  found := 0
  call search(0)
  print found, dist[7]
end
"""

#: All corpus programs by name (used by tests, benches, and examples).
ALL: Dict[str, str] = {
    "stats": STATS_PACKAGE,
    "swaplib": SWAP_LIBRARY,
    "bank": BANK_LEDGER,
    "evaluator": EVALUATOR,
    "matrix": MATRIX_TOOLS,
    "scheduler": SCHEDULER,
    "formatter": FORMATTER,
    "bfs": GRAPH_BFS,
}
