"""Workload generation: random CK programs with controllable structure
(the paper's size parameters ``N_C``, ``E_C``, ``µ_a``, ``µ_f``,
``d_P``), structured pattern families, and a hand-written corpus of
realistic programs."""

from repro.workloads.generator import GeneratorConfig, generate_program, generate_resolved
from repro.workloads.files import write_generated_corpus, write_handwritten_corpus
from repro.workloads import patterns
from repro.workloads import corpus

__all__ = [
    "GeneratorConfig",
    "generate_program",
    "generate_resolved",
    "write_generated_corpus",
    "write_handwritten_corpus",
    "patterns",
    "corpus",
]
