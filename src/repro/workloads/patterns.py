"""Structured program families with known analysis answers.

Each function returns CK **source text** (so tests exercise the whole
front end) for a family parameterised by size.  The expected analysis
results are simple closed forms, which the test suite asserts.
"""

from __future__ import annotations

from typing import List


def chain(length: int) -> str:
    """``main → c1 → c2 → … → cn``; each link passes its formal down
    and only the last procedure assigns it.

    Expected: ``RMOD(ci) = {x}`` for every i (the β chain carries the
    modification all the way up), and ``MOD(main's call) = {g}``.
    """
    lines = ["program chain", "  global g", ""]
    for index in range(1, length + 1):
        lines.append("  proc c%d(x)" % index)
        lines.append("  begin")
        if index < length:
            lines.append("    call c%d(x)" % (index + 1))
        else:
            lines.append("    x := 1")
        lines.append("  end")
        lines.append("")
    lines += ["begin", "  call c1(g)", "end"]
    return "\n".join(lines) + "\n"


def unmodified_chain(length: int) -> str:
    """Like :func:`chain` but nobody assigns the formal.

    Expected: every ``RMOD`` is empty and ``MOD(main's call) = {}`` —
    the precision case that separates the analysis from the
    "assume everything is modified" default.
    """
    lines = ["program chain0", "  global g", ""]
    for index in range(1, length + 1):
        lines.append("  proc c%d(x)" % index)
        lines.append("  begin")
        if index < length:
            lines.append("    call c%d(x)" % (index + 1))
        else:
            lines.append("    g := x")
        lines.append("  end")
        lines.append("")
    lines += ["begin", "  call c1(g)", "end"]
    return "\n".join(lines) + "\n"


def ring(length: int) -> str:
    """``r1 → r2 → … → rn → r1`` mutual recursion, formal passed around
    the cycle, modified only in ``r1``.

    Expected: the whole ring is one SCC of both the call graph and β;
    ``RMOD(ri) = {x}`` for every i (Figure 1's identical-within-SCC
    property), and every ``GMOD`` contains the global ``h`` assigned in
    ``r2`` (if present).
    """
    lines = ["program ring", "  global g, h", ""]
    for index in range(1, length + 1):
        succ = index % length + 1
        lines.append("  proc r%d(x)" % index)
        lines.append("  begin")
        if index == 1:
            lines.append("    x := x + 1")
        if index == 2 or length == 1:
            lines.append("    h := 1")
        lines.append("    if g > 0 then")
        lines.append("      g := g - 1")
        lines.append("      call r%d(x)" % succ)
        lines.append("    end")
        lines.append("  end")
        lines.append("")
    lines += ["begin", "  g := 3", "  call r1(g)", "end"]
    return "\n".join(lines) + "\n"


def call_tree(depth: int, fanout: int = 2) -> str:
    """A complete call tree: node ``t_k`` calls its ``fanout`` children;
    each leaf modifies a distinct global.

    Expected: ``GMOD`` of an inner node is the union of the globals of
    the leaves below it — exercises tree/cross-edge handling in
    ``findgmod`` without any cycles.
    """
    total = (fanout ** depth - 1) // (fanout - 1) if fanout > 1 else depth
    num_leaves = fanout ** (depth - 1) if depth >= 1 else 0
    lines = ["program tree"]
    lines.append("  global %s" % ", ".join("lg%d" % i for i in range(max(num_leaves, 1))))
    lines.append("")
    leaf_counter = [0]
    first_leaf = total - num_leaves

    for node in range(total):
        lines.append("  proc t%d(x)" % node)
        lines.append("  begin")
        if node < first_leaf:
            for child in range(fanout):
                lines.append("    call t%d(x)" % (node * fanout + 1 + child))
        else:
            lines.append("    lg%d := x" % leaf_counter[0])
            leaf_counter[0] += 1
        lines.append("  end")
        lines.append("")
    lines += ["begin", "  call t0(1)", "end"]
    return "\n".join(lines) + "\n"


def deep_nest(depth: int) -> str:
    """A tower of nested procedures: each level declares a local and a
    child; the innermost assigns **every** enclosing level's local.

    Expected: the level-λ local appears in ``GMOD`` of the procedures
    at levels > λ (and of the level-λ owner itself) but in no
    ``GMOD`` outside the tower — exercises the multi-level algorithm's
    per-level filtering.
    """
    lines = ["program nest", "  global g", ""]
    pad = "  "

    def emit(level: int, indent: int) -> None:
        space = pad * indent
        lines.append("%sproc n%d(x)" % (space, level))
        lines.append("%s  local v%d" % (space, level))
        if level < depth:
            emit(level + 1, indent + 1)
        lines.append("%sbegin" % space)
        lines.append("%s  v%d := x" % (space, level))
        if level < depth:
            lines.append("%s  call n%d(x)" % (space, level + 1))
        else:
            for target in range(1, depth + 1):
                lines.append("%s  v%d := %d" % (space, target, target))
            lines.append("%s  g := x" % space)
        lines.append("%send" % space)

    emit(1, 1)
    lines.append("")
    lines += ["begin", "  call n1(g)", "end"]
    return "\n".join(lines) + "\n"


def two_sccs_bridged(size: int) -> str:
    """Two recursion rings joined by a one-way bridge edge.

    Expected: the downstream ring's global effects appear in the
    upstream ring's ``GMOD`` but not vice versa — exercises Lemma 1
    (cross edges always point at already-closed components).
    """
    lines = ["program bridged", "  global ga, gb", ""]
    # Ring A: a1 ... a_size, a1 modifies ga, a_size bridges to b1.
    for index in range(1, size + 1):
        succ = index % size + 1
        lines.append("  proc a%d(x)" % index)
        lines.append("  begin")
        if index == 1:
            lines.append("    ga := x")
        lines.append("    if ga > 0 then")
        lines.append("      ga := ga - 1")
        lines.append("      call a%d(x)" % succ)
        lines.append("    end")
        if index == size:
            lines.append("    call b1(x)")
        lines.append("  end")
        lines.append("")
    for index in range(1, size + 1):
        succ = index % size + 1
        lines.append("  proc b%d(y)" % index)
        lines.append("  begin")
        if index == 1:
            lines.append("    gb := y")
        lines.append("    if gb > 0 then")
        lines.append("      gb := gb - 1")
        lines.append("      call b%d(y)" % succ)
        lines.append("    end")
        lines.append("  end")
        lines.append("")
    lines += ["begin", "  ga := 2", "  gb := 2", "  call a1(1)", "end"]
    return "\n".join(lines) + "\n"


def parameter_shuffle(length: int) -> str:
    """A chain that rotates three formals at every hop; only the last
    procedure assigns its first formal.

    Expected: the β SCC/condensation must track positions — exactly one
    of the three formals is in each ``RMOD`` along the chain (which one
    rotates with depth).
    """
    lines = ["program shuffle", "  global g0, g1, g2", ""]
    for index in range(1, length + 1):
        lines.append("  proc s%d(a, b, c)" % index)
        lines.append("  begin")
        if index < length:
            lines.append("    call s%d(b, c, a)" % (index + 1))
        else:
            lines.append("    a := 1")
        lines.append("  end")
        lines.append("")
    lines += ["begin", "  call s1(g0, g1, g2)", "end"]
    return "\n".join(lines) + "\n"


def fortran_style(num_procs: int, num_globals: int, mods_per_proc: int = 2) -> str:
    """A flat program where procedure ``i`` assigns ``mods_per_proc``
    globals (a sliding window) and calls procedure ``i+1``.

    Expected: ``GMOD(p_i)`` is the union of the windows from ``i``
    onward — a simple closed form for precision tests.
    """
    lines = ["program flat"]
    lines.append("  global %s" % ", ".join("g%d" % i for i in range(num_globals)))
    lines.append("")
    for index in range(num_procs):
        lines.append("  proc p%d()" % index)
        lines.append("  begin")
        for offset in range(mods_per_proc):
            lines.append("    g%d := %d" % ((index + offset) % num_globals, index))
        if index + 1 < num_procs:
            lines.append("    call p%d()" % (index + 1))
        lines.append("  end")
        lines.append("")
    lines += ["begin", "  call p0()", "end"]
    return "\n".join(lines) + "\n"


def self_recursive(depth_guard: int = 3) -> str:
    """Minimal self-recursion with a reference parameter cycle."""
    return """
program selfrec
  global g

  proc f(n, acc)
  begin
    acc := acc + n
    if n > 0 then
      call f(n - 1, acc)
    end
  end

begin
  g := 0
  call f(%d, g)
end
""" % depth_guard


def array_pipeline(num_procs: int, seed: int = 0) -> str:
    """A randomised array-processing pipeline: every procedure takes a
    matrix and two index parameters, touches a random section shape
    (element / row / column / block / whole), and forwards the matrix —
    sometimes with transformed index arguments — to later stages.

    Exercises whole-array reference passing, symbolic subscript
    translation through β chains, and every Figure 3 shape; the §6
    fuzz tests run it under the element-level oracle.
    """
    import random

    rng = random.Random(seed)
    lines = ["program pipeline", "  global array big[8][8]", "  global seed", ""]
    shapes = ("element", "row", "column", "block", "whole")
    for index in range(num_procs):
        shape = rng.choice(shapes)
        lines.append("  proc stage%d(t, r, c)" % index)
        lines.append("    local i, j")
        lines.append("  begin")
        if shape == "element":
            lines.append("    t[r][c] := %d" % rng.randint(0, 9))
        elif shape == "row":
            lines.append("    for j := 0 to 7 do")
            lines.append("      t[r][j] := j")
            lines.append("    end")
        elif shape == "column":
            lines.append("    for i := 0 to 7 do")
            lines.append("      t[i][c] := i")
            lines.append("    end")
        elif shape == "block":
            lo = rng.randint(0, 5)
            lines.append("    for i := %d to %d do" % (lo, lo + 2))
            lines.append("      t[i][%d] := i" % rng.randint(0, 7))
            lines.append("    end")
        else:
            lines.append("    for i := 0 to 7 do")
            lines.append("      for j := 0 to 7 do")
            lines.append("        t[i][j] := i + j")
            lines.append("      end")
            lines.append("    end")
        # Forward to up to two later stages with varied index arguments.
        for _ in range(rng.randint(0, 2)):
            target = rng.randrange(index + 1, num_procs + 1)
            if target == num_procs:
                continue
            args = []
            for name in ("r", "c"):
                roll = rng.random()
                if roll < 0.4:
                    args.append(name)  # Pass-through (stays symbolic).
                elif roll < 0.7:
                    args.append(str(rng.randint(0, 7)))  # Constant.
                else:
                    args.append("%s + 0" % name)  # By-value, unknown.
            lines.append("    call stage%d(t, %s, %s)" % (target, args[0], args[1]))
        lines.append("  end")
        lines.append("")
    lines.append("begin")
    lines.append("  seed := %d" % rng.randint(0, 7))
    for index in range(min(3, num_procs)):
        lines.append("  call stage%d(big, %d, %d)"
                     % (index, rng.randint(0, 7), rng.randint(0, 7)))
    lines.append("end")
    return "\n".join(lines) + "\n"


def irreducible(pairs: int) -> str:
    """``pairs`` two-entry loops: main calls both members of each
    mutually recursive pair directly, so each loop {xi, yi} has two
    entries — the classic irreducible shape.

    Expected: T1-T2 reduction gets stuck on every pair (the call graph
    is irreducible), yet Figure 1 / Figure 2 still produce the least
    fixpoint — the paper's "neither algorithm relies on the assumption
    of reducibility".
    """
    lines = ["program irr"]
    lines.append("  global %s" % ", ".join("g%d" % i for i in range(pairs)))
    lines.append("")
    for index in range(pairs):
        lines.append("  proc x%d(n)" % index)
        lines.append("  begin")
        lines.append("    g%d := g%d + 1" % (index, index))
        lines.append("    if n > 0 then")
        lines.append("      call y%d(n - 1)" % index)
        lines.append("    end")
        lines.append("  end")
        lines.append("")
        lines.append("  proc y%d(n)" % index)
        lines.append("  begin")
        lines.append("    if n > 0 then")
        lines.append("      call x%d(n - 1)" % index)
        lines.append("    end")
        lines.append("  end")
        lines.append("")
    lines.append("begin")
    for index in range(pairs):
        lines.append("  call x%d(2)" % index)
        lines.append("  call y%d(2)" % index)
    lines.append("end")
    return "\n".join(lines) + "\n"
