"""Materialize workloads as on-disk corpora for the batch engine.

The generator and the hand-written corpus both produce in-memory
sources; the batch engine consumes directories of ``.ck`` files.  This
module bridges the two, deterministically: file ``prog_NNN.ck`` is
always the program generated from ``base_seed + NNN`` with that slot's
structural variation, so tests and benchmarks can regenerate an
identical corpus from ``(directory, count, base_seed)`` alone.
"""

from __future__ import annotations

import os
from dataclasses import replace
from typing import List, Optional, Sequence

from repro.lang.pretty import pretty
from repro.workloads import corpus
from repro.workloads.generator import GeneratorConfig, generate_program

#: Structural variation applied round-robin across corpus slots, so a
#: generated corpus mixes flat, shallow- and deep-nested programs with
#: and without recursion (the shapes the differential suite sweeps).
DEFAULT_VARIANTS = (
    {"max_depth": 1},
    {"max_depth": 2, "nesting_prob": 0.5},
    {"max_depth": 4, "nesting_prob": 0.6},
    {"max_depth": 1, "allow_recursion": False},
    {"max_depth": 3, "nesting_prob": 0.5, "prob_arg_global": 0.4},
)


def write_generated_corpus(
    directory: str,
    count: int,
    base_seed: int = 0,
    config: Optional[GeneratorConfig] = None,
    variants: Sequence[dict] = DEFAULT_VARIANTS,
) -> List[str]:
    """Write ``count`` generated programs into ``directory``.

    Returns the sorted file paths.  ``config`` sets the shared base
    parameters (default: 12 procedures, 6 globals); ``variants`` are
    cycled per slot on top of it.
    """
    if config is None:
        config = GeneratorConfig(num_procs=12, num_globals=6)
    os.makedirs(directory, exist_ok=True)
    paths: List[str] = []
    for index in range(count):
        overrides = dict(variants[index % len(variants)]) if variants else {}
        slot_config = replace(config, seed=base_seed + index, **overrides)
        source = pretty(generate_program(slot_config))
        path = os.path.join(directory, "prog_%03d.ck" % index)
        with open(path, "w") as handle:
            handle.write(source)
        paths.append(path)
    return paths


def write_handwritten_corpus(directory: str) -> List[str]:
    """Write the hand-written :mod:`repro.workloads.corpus` programs
    out as ``<name>.ck`` files; returns the sorted paths."""
    os.makedirs(directory, exist_ok=True)
    paths: List[str] = []
    for name in sorted(corpus.ALL):
        path = os.path.join(directory, "%s.ck" % name)
        with open(path, "w") as handle:
            handle.write(corpus.ALL[name])
        paths.append(path)
    return paths
