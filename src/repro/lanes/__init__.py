"""Pluggable effect lanes riding the fused :class:`ProgramArena`.

The paper's MOD/USE machinery is one instance of a family: any analysis
whose per-procedure state propagates along the call multi-graph can ride
the arena's single lowering and its single cached SCC condensation.
This package supplies the registry (:mod:`repro.lanes.spec`), the fused
multi-lane driver (:mod:`repro.lanes.driver`), and the two shipped
lanes:

* ``sections`` — the Section 6 regular-section solver re-hosted as a
  fused lane (:mod:`repro.lanes.sections_lane`), value-identical to the
  standalone :func:`repro.sections.solver.analyze_sections`;
* ``refalias`` — a GPG-lite reference-parameter alias lane
  (:mod:`repro.lanes.refalias`), value-identical to
  :func:`repro.core.aliases.compute_aliases` and consumable by the
  Section 5 alias factoring.

The Dyck-reachability alias baseline lives under
:mod:`repro.baselines.dyck` — it is a precision oracle only, never a
lane.
"""

from repro.lanes.driver import LaneContext, solve_lanes
from repro.lanes.spec import (
    LANE_NAMES,
    LaneSpec,
    get_lane,
    lane_specs,
    parse_lane_names,
    register_lane,
    validate_lane_names,
)

__all__ = [
    "LANE_NAMES",
    "LaneContext",
    "LaneSpec",
    "get_lane",
    "lane_specs",
    "parse_lane_names",
    "register_lane",
    "solve_lanes",
    "validate_lane_names",
]
