"""The lane registry: what it takes to ride the fused arena.

A *lane* is one analysis kind advanced through the shared
:class:`~repro.core.arena.ProgramArena` traversal.  The MOD/USE solvers
are the built-in pair; a :class:`LaneSpec` describes any further kind
generically enough that the driver (:mod:`repro.lanes.driver`) can
advance all registered lanes through **one** cached call-graph
condensation, regardless of how many lanes are requested.

A spec names the lane, states which way its facts flow along call
edges, reports its mask width (every lane's per-procedure state is
bounded by masks over the variable universe — the arena's per-kind
lane discipline from PR 5, see ``core/arena.py``), and builds the
lane's mutable state from the arena.  The state object carries the
lane-specific transfer functions:

* ``direction == "up"`` (callee → caller, like ``GMOD``): the state
  must implement ``sweep_component(comp_index, members, ctx) -> bool``
  — one sweep over a component's call sites, returning whether any
  per-procedure fact changed.  The driver owns the component walk and
  the per-component fixpoint loop, shared across every up lane.
* ``direction == "down"`` (caller → callee, like alias pairs): the
  state must implement ``solve_down(ctx)`` — the driver hands it the
  shared condensation for scheduling and it drains to its fixpoint.

Both shapes then implement ``finalize(ctx)`` (post-fixpoint
projections), ``to_payload()`` (a JSON-safe block for the service
surfaces), and ``to_blob()`` (a compact binary form for the v4
container trailer, built on the shard wire codec's mask strips).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence


@dataclass(frozen=True)
class LaneSpec:
    """Registry entry for one pluggable analysis lane."""

    #: Registry key (the ``--lanes`` token).
    name: str
    #: One-line description for docs and ``--help``.
    description: str
    #: Which way facts flow along call edges: ``"up"`` (callee →
    #: caller) or ``"down"`` (caller → callee).
    direction: str
    #: Mask width of the lane's per-procedure state, in bits, as a
    #: function of the arena (every shipped lane is universe-wide).
    mask_width: Callable[[object], int]
    #: Build the lane's mutable state from the arena.  The state seeds
    #: itself (the lane's local extraction) and carries the binding
    #: transfer (its projection through call-site bindings).
    make_state: Callable[[object], object]
    #: Tag of this lane's v4 container trailer section
    #: (see :mod:`repro.core.persist`); 0 when the lane is not
    #: persisted.
    section_tag: int = 0


_REGISTRY: Dict[str, LaneSpec] = {}


def register_lane(spec: LaneSpec) -> LaneSpec:
    """Add a lane to the registry (idempotent per name)."""
    if spec.direction not in ("up", "down"):
        raise ValueError(
            "lane direction must be 'up' or 'down', got %r" % spec.direction
        )
    _REGISTRY[spec.name] = spec
    return spec


def get_lane(name: str) -> LaneSpec:
    _ensure_builtin()
    spec = _REGISTRY.get(name)
    if spec is None:
        raise ValueError(
            "unknown lane %r (registered: %s)"
            % (name, ", ".join(sorted(_REGISTRY)))
        )
    return spec


def lane_specs() -> List[LaneSpec]:
    """Every registered lane, in registration order."""
    _ensure_builtin()
    return list(_REGISTRY.values())


def parse_lane_names(text: str) -> List[str]:
    """Parse a ``--lanes`` argument (comma-separated, order-preserving,
    duplicates dropped) and validate every name against the registry."""
    names: List[str] = []
    for token in text.split(","):
        token = token.strip()
        if not token:
            continue
        get_lane(token)  # Raises on unknown names.
        if token not in names:
            names.append(token)
    return names


def validate_lane_names(names: Sequence[str]) -> List[str]:
    """Validate an already-split lane name list (service surfaces)."""
    out: List[str] = []
    for name in names:
        get_lane(name)
        if name not in out:
            out.append(name)
    return out


def _ensure_builtin() -> None:
    """Register the shipped lanes on first use (import cycle guard:
    the lane modules import the solvers, which never import us)."""
    if "sections" in _REGISTRY:
        return
    from repro.lanes import refalias, sections_lane  # noqa: F401  (self-registering)


#: Names of the shipped lanes, for CLI help and docs.
LANE_NAMES = ("sections", "refalias", "sections-use")
