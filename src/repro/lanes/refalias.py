"""GPG-lite reference-parameter alias lane.

Computes the Banning introduction-rule fixpoint of
:mod:`repro.core.aliases` — may-alias pairs for reference formals — as
a pure **mask lane**: the only state is the per-procedure partner
tables (uid → mask of may-alias partners over the variable universe)
and their domain masks, exactly the two structures the Section 5
factoring step consumes.  Pair sets are derived from the masks on
demand, never maintained.

The lane is scheduled by the arena's shared call-graph condensation:
pairs flow caller → callee (rules 1–4) and parent → nested (rule 5),
so the initial drain visits components in *reverse* condensation order
(callers first — the condensation lists callees first) and the
worklist then handles the residue: rule 5 edges follow lexical nesting,
not call edges, so a topological schedule alone is not sufficient and
the drain repeats until quiescent.  The least fixpoint is unique, so
the result is value-identical to :func:`repro.core.aliases.compute_aliases`
(pinned by the differential sweep), and
:meth:`RefAliasLaneState.to_alias_result` feeds it straight into
:func:`repro.core.aliases.factor_aliases_fused`.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.core.aliases import AliasResult, Pair
from repro.core.binio import read_varint, write_varint
from repro.lanes.spec import LaneSpec, register_lane


class RefAliasLaneState:
    """Mask-lane fixpoint of the Banning alias rules."""

    direction = "down"

    def __init__(self, arena):
        self.arena = arena
        self.resolved = arena.resolved
        num_procs = self.resolved.num_procs
        #: Per pid: uid -> mask of may-alias partners on entry.
        self.partner: List[Dict[int, int]] = [{} for _ in range(num_procs)]
        #: Per pid: key set of ``partner`` as a mask.
        self.domain: List[int] = [0] * num_procs
        self._extant: Dict[int, int] = {}

    def _add(self, pid: int, a: int, b: int) -> None:
        partners = self.partner[pid]
        partners[a] = partners.get(a, 0) | (1 << b)
        partners[b] = partners.get(b, 0) | (1 << a)
        self.domain[pid] |= (1 << a) | (1 << b)

    def _extant_of(self, pid: int) -> int:
        cached = self._extant.get(pid)
        if cached is None:
            cached = self.arena.universe.extant_mask(self.resolved.procs[pid])
            self._extant[pid] = cached
        return cached

    # -- driver hook ---------------------------------------------------------

    def solve_down(self, ctx) -> None:
        """Drain the introduction rules to their least fixpoint,
        seeded in reverse condensation order (callers first)."""
        arena = self.arena
        resolved = self.resolved
        num_procs = resolved.num_procs
        partner = self.partner
        site_callee = arena.site_callee
        ref_heads = arena.site_ref_heads
        ref_formal = arena.ref_formal_uid
        ref_base = arena.ref_base_uid
        sites_by_caller = ctx.sites_by_caller

        # Per-caller decoded by-reference bindings, built lazily from
        # the arena's flat tables (same shape the alias solvers use).
        ref_cache: Dict[int, List] = {}

        def _sites_of(pid: int) -> List:
            cached = ref_cache.get(pid)
            if cached is None:
                cached = []
                for sid in sites_by_caller[pid]:
                    ref = [
                        (ref_formal[r], ref_base[r])
                        for r in range(ref_heads[sid], ref_heads[sid + 1])
                    ]
                    cached.append((site_callee[sid], ref))
                ref_cache[pid] = cached
            return cached

        # Callers first: components are emitted callees-first, and a
        # LIFO drain pops from the end, so pushing the topological
        # order reversed processes roots before leaves.
        order = [
            pid
            for members in reversed(ctx.components)
            for pid in members
        ]
        worklist = list(reversed(order))
        queued = [True] * num_procs
        while worklist:
            caller_pid = worklist.pop()
            queued[caller_pid] = False
            caller_table = partner[caller_pid]
            # Rule 5: nested procedures inherit the parent's pairs.
            for nested in resolved.procs[caller_pid].nested:
                nested_table = partner[nested.pid]
                added = False
                for a, mask in caller_table.items():
                    missing = mask & ~nested_table.get(a, 0)
                    while missing:
                        low = missing & -missing
                        self._add(nested.pid, a, low.bit_length() - 1)
                        missing ^= low
                        added = True
                if added and not queued[nested.pid]:
                    queued[nested.pid] = True
                    worklist.append(nested.pid)
            # Snapshot: self-recursive sites read the caller's table
            # while rule insertions grow the callee's (same object).
            caller_partners = dict(caller_table)
            for callee_pid, ref in _sites_of(caller_pid):
                callee_extant = self._extant_of(callee_pid)
                callee_partners = partner[callee_pid]
                added = False
                for index, (formal_uid, actual_uid) in enumerate(ref):
                    formal_partners = callee_partners.get(formal_uid, 0)
                    # Rule 3: actual still extant inside the callee.
                    if (
                        (callee_extant >> actual_uid) & 1
                        and actual_uid != formal_uid
                        and not (formal_partners >> actual_uid) & 1
                    ):
                        self._add(callee_pid, formal_uid, actual_uid)
                        formal_partners |= 1 << actual_uid
                        added = True
                    aliased_to_actual = caller_partners.get(actual_uid, 0)
                    # Rules 1 and 2: two actuals aliased in the caller.
                    for formal_j_uid, actual_j_uid in ref[index + 1:]:
                        same = actual_uid == actual_j_uid
                        known = (aliased_to_actual >> actual_j_uid) & 1
                        if (same or known) and formal_uid != formal_j_uid:
                            if not (formal_partners >> formal_j_uid) & 1:
                                self._add(callee_pid, formal_uid, formal_j_uid)
                                formal_partners |= 1 << formal_j_uid
                                added = True
                    # Rule 4: actual aliased in the caller to a
                    # variable still extant inside the callee.
                    new_bits = (
                        aliased_to_actual
                        & callee_extant
                        & ~formal_partners
                        & ~(1 << formal_uid)
                    )
                    while new_bits:
                        low = new_bits & -new_bits
                        self._add(callee_pid, formal_uid, low.bit_length() - 1)
                        formal_partners |= low
                        new_bits ^= low
                        added = True
                if added and not queued[callee_pid]:
                    queued[callee_pid] = True
                    worklist.append(callee_pid)

    def finalize(self, ctx) -> None:
        pass

    # -- results -------------------------------------------------------------

    def pairs(self) -> List[Set[Pair]]:
        """Pair sets derived from the partner masks (each pair once)."""
        out: List[Set[Pair]] = []
        for table in self.partner:
            pair_set: Set[Pair] = set()
            for a, mask in table.items():
                higher = mask >> (a + 1)
                base = a + 1
                while higher:
                    low = higher & -higher
                    pair_set.add(frozenset((a, base + low.bit_length() - 1)))
                    higher ^= low
            out.append(pair_set)
        return out

    def to_alias_result(self) -> AliasResult:
        """The lane's masks in the shape Section 5's factoring
        consumes — drop-in for :func:`compute_aliases`' result."""
        return AliasResult(
            resolved=self.resolved,
            pairs=self.pairs(),
            partner_mask=self.partner,
            domain_mask=list(self.domain),
        )

    def to_payload(self) -> Dict:
        """JSON-safe lane block: per-procedure sorted name pairs (the
        exact shape of the summary payload's ``aliases`` block) plus
        mask-level totals."""
        resolved = self.resolved
        variables = resolved.variables
        pairs = {}
        total = 0
        for proc, pair_set in zip(resolved.procs, self.pairs()):
            total += len(pair_set)
            pairs[proc.qualified_name] = sorted(
                sorted(
                    [
                        variables[a].qualified_name,
                        variables[b].qualified_name,
                    ]
                )
                for a, b in pair_set
            )
        return {
            "pairs": pairs,
            "total_pairs": total,
            "domain_procs": sum(1 for mask in self.domain if mask),
        }

    def to_blob(self) -> bytes:
        return refalias_tables_to_blob(self.partner)


# -- trailer-section codec (shared with core/persist.py) ---------------------


def refalias_tables_to_blob(partner: List[Dict[int, int]]) -> bytes:
    """Binary form of the partner tables: per procedure, a varint entry
    count and (uid varint, partner mask) strips via the shard wire
    codec's signed-mask encoding.  Domain masks are derivable and not
    stored."""
    from repro.shard.wire import write_signed_mask

    out = bytearray()
    write_varint(out, len(partner))
    for table in partner:
        write_varint(out, len(table))
        for uid in sorted(table):
            write_varint(out, uid)
            write_signed_mask(out, table[uid])
    return bytes(out)


def refalias_tables_from_blob(data: bytes) -> List[Dict[int, int]]:
    from repro.shard.wire import read_signed_mask

    pos = 0
    num_procs, pos = read_varint(data, pos)
    partner: List[Dict[int, int]] = []
    for _ in range(num_procs):
        count, pos = read_varint(data, pos)
        table: Dict[int, int] = {}
        for _ in range(count):
            uid, pos = read_varint(data, pos)
            mask, pos = read_signed_mask(data, pos)
            table[uid] = mask
        partner.append(table)
    return partner


REFALIAS_LANE = register_lane(
    LaneSpec(
        name="refalias",
        description="GPG-lite reference-parameter may-alias pairs as "
        "partner/domain masks (Banning rules 1-5)",
        direction="down",
        mask_width=lambda arena: arena.width,
        make_state=RefAliasLaneState,
        section_tag=4,  # == repro.core.persist.SECTION_LANE_REFALIAS
    )
)
