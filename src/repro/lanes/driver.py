"""The multi-lane fused driver.

``solve_lanes`` advances every requested lane through **one** traversal
of the arena's cached call-graph condensation — the same Tarjan output
the reference GMOD solver, the standalone sections path, and the shard
partitioner consume — so N lanes cost exactly the same number of
condensation passes as zero lanes: the counter-asserted invariant of
the lane framework (``tests/test_lanes.py``).

The shared walk structure:

* the per-caller site-id decode is built once and handed to every lane
  through the :class:`LaneContext`;
* all *up* lanes (callee → caller) advance together, component by
  component in the condensation's reverse-topological order, each
  component iterated until every still-active lane reports quiescence
  (a lane that stabilised early is not swept again — lanes are
  independent, so its facts cannot change);
* *down* lanes (caller → callee) then drain over the same condensation
  in reverse order.

Trivial components (a single procedure with no self call) take exactly
one sweep, mirroring the standalone sections solver's early exit.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.lanes.spec import get_lane


@dataclass
class LaneContext:
    """Shared per-run structures every lane state receives."""

    arena: object
    component_of: Sequence[int]
    components: Sequence[Sequence[int]]
    #: Per pid: site ids of the procedure's call sites, in site order.
    sites_by_caller: List[List[int]]

    @classmethod
    def build(cls, arena) -> "LaneContext":
        component_of, components = arena.call_condensation()
        sites_by_caller: List[List[int]] = [
            [] for _ in range(arena.resolved.num_procs)
        ]
        for sid, caller_pid in enumerate(arena.site_caller):
            sites_by_caller[caller_pid].append(sid)
        return cls(
            arena=arena,
            component_of=component_of,
            components=components,
            sites_by_caller=sites_by_caller,
        )

    def is_trivial_component(self, comp_index: int) -> bool:
        members = self.components[comp_index]
        if len(members) != 1:
            return False
        node = members[0]
        return not any(
            self.component_of[succ] == comp_index
            for succ in self.arena.call_csr.successors_of(node)
        )


def solve_lanes(
    arena,
    lane_names: Sequence[str],
    timings: Dict[str, float] = None,
) -> Dict[str, object]:
    """Advance every named lane to its fixpoint on the shared arena.

    Returns ``{lane name: finalized lane state}`` in request order.
    ``timings``, when given, receives one ``lane.<name>`` entry per
    lane plus the shared-walk total under ``lanes``.
    """
    specs = [get_lane(name) for name in lane_names]
    started = time.perf_counter()
    ctx = LaneContext.build(arena)
    states = {spec.name: spec.make_state(arena) for spec in specs}
    lane_clock = {spec.name: 0.0 for spec in specs}

    up = [states[spec.name] for spec in specs if spec.direction == "up"]
    down = [states[spec.name] for spec in specs if spec.direction == "down"]

    if up:
        names_up = [
            spec.name for spec in specs if spec.direction == "up"
        ]
        for comp_index, members in enumerate(ctx.components):
            active = list(zip(names_up, up))
            sweeps = {name: 0 for name in names_up}
            trivial = ctx.is_trivial_component(comp_index)
            while active:
                still = []
                for name, state in active:
                    tick = time.perf_counter()
                    changed = state.sweep_component(comp_index, members, ctx)
                    lane_clock[name] += time.perf_counter() - tick
                    sweeps[name] += 1
                    if changed and not trivial:
                        still.append((name, state))
                active = still
            for name, state in zip(names_up, up):
                note = getattr(state, "note_component", None)
                if note is not None:
                    note(sweeps[name])
    for state in down:
        tick = time.perf_counter()
        state.solve_down(ctx)
        lane_clock[_name_of(states, state)] += time.perf_counter() - tick
    for spec in specs:
        state = states[spec.name]
        tick = time.perf_counter()
        state.finalize(ctx)
        lane_clock[spec.name] += time.perf_counter() - tick

    if timings is not None:
        for name, spent in lane_clock.items():
            timings["lane.%s" % name] = timings.get("lane.%s" % name, 0.0) + spent
        timings["lanes"] = timings.get("lanes", 0.0) + (
            time.perf_counter() - started
        )
    return states


def _name_of(states: Dict[str, object], state) -> str:
    for name, candidate in states.items():
        if candidate is state:
            return name
    raise KeyError("lane state not registered")


def lane_payloads(states: Dict[str, object]) -> Dict[str, Dict]:
    """JSON-safe ``lanes`` block: ``{name: payload}`` in solve order."""
    return {name: state.to_payload() for name, state in states.items()}


def lane_blobs(states: Dict[str, object]) -> Dict[int, bytes]:
    """v4 container trailer sections for every persistable lane."""
    out: Dict[int, bytes] = {}
    for name, state in states.items():
        tag = get_lane(name).section_tag
        if tag:
            out[tag] = state.to_blob()
    return out
