"""The Section 6 regular-sections solver re-hosted as a fused lane.

The standalone solver (:mod:`repro.sections.solver`) sweeps every call
site of a component and re-projects the callee's **entire** ``GRS`` map
each time — at 10k-procedure scale that re-translation dominates the
solve (millions of ``g_e`` applications whose inputs did not change
since the previous sweep).  The lane advances the same system
*delta-driven*: every procedure keeps an append-only changelog of the
uids whose section changed, and every call site keeps a cursor into its
callee's changelog, so a sweep translates exactly the facts that are
new since the site was last visited.  Each translated fact is merged
into the per-site section table as it flows past, so the standalone
solver's final whole-map projection pass disappears too: by quiescence
every cursor sits at the end of its callee's log, and the meet of a
fact's descending value chain equals its final value.

The fixpoint is unchanged: sections move monotonically down a
finite-height lattice and the meet is associative, commutative and
idempotent, so chaotic iteration converges to the same least fixpoint
whichever schedule feeds it (the 30-program differential sweep and the
fuzz corpora pin the lane against the standalone reference).  Only the
*schedule* differs — and with it the operation count, which is the
point.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.binio import read_bytes, read_varint, write_bytes, write_varint
from repro.core.bitvec import OpCounter
from repro.core.varsets import EffectKind
from repro.lanes.spec import LaneSpec, register_lane
from repro.sections.descriptors import SectionMap, extended_local_sections
from repro.sections.solver import SectionAnalysis, _merge_into


def _lattice():
    from repro.sections.framework import FIGURE3

    return FIGURE3


class SectionsLaneState:
    """Delta-driven ``GRS`` fixpoint over the shared condensation."""

    direction = "up"

    def __init__(self, arena, kind: EffectKind = EffectKind.MOD):
        self.arena = arena
        self.kind = kind
        self.lattice = _lattice()
        self.counter = OpCounter()
        resolved = arena.resolved
        self.resolved = resolved
        self.universe = arena.universe

        # The FIGURE3 strategy functions are thin wrappers that import
        # their target on every call; binding the targets directly
        # keeps the per-fact transfer as cheap as the fact itself.
        if self.lattice.name == "figure3":
            from repro.sections.binding_fn import (
                translate_subscripts,
                translate_through_binding,
            )

            self._translate = translate_subscripts
            self._through_binding = translate_through_binding
        else:
            lattice = self.lattice
            self._translate = lattice.translate_subscripts

            def _through(section, site, binding, _lattice=lattice):
                from repro.sections.framework import (
                    translate_through_binding_generic,
                )

                return translate_through_binding_generic(
                    _lattice, section, site, binding
                )

            self._through_binding = _through

        self.grs: List[SectionMap] = [
            dict(table)
            for table in extended_local_sections(
                resolved, self.universe, kind, self.lattice
            )
        ]
        #: Per pid: uids whose section changed, in change order (the
        #: seeds count as the first changes).  Append-only.
        self.changelog: List[List[int]] = [
            list(table.keys()) for table in self.grs
        ]
        #: Per site id: how much of the callee's changelog this site
        #: has already translated.
        self.cursor: List[int] = [0] * resolved.num_call_sites
        #: Per site id: the sectioned DMOD, accumulated as facts flow
        #: past (see the module docstring).
        self.site_sections: List[SectionMap] = [
            {} for _ in range(resolved.num_call_sites)
        ]

        # Per-site binding decode, built once (the standalone solver
        # rebuilds the formal→binding map on every projection).
        self._formal_binding: List[Dict[int, object]] = []
        for site in resolved.call_sites:
            table: Dict[int, object] = {}
            formals = site.callee.formals
            for binding in site.bindings:
                if binding.by_reference:
                    table[formals[binding.position].uid] = binding
            self._formal_binding.append(table)

        self.component_iterations: List[int] = []

    # -- driver hooks --------------------------------------------------------

    def sweep_component(self, comp_index: int, members, ctx) -> bool:
        """Translate every fact that is new since each site's last
        visit; True if any caller section changed."""
        changed = False
        grs = self.grs
        changelog = self.changelog
        cursor = self.cursor
        call_sites = self.resolved.call_sites
        site_callee = self.arena.site_callee
        local_mask = self.universe.local_mask
        formal_mask = self.universe.formal_mask
        counter = self.counter
        translate = self._translate
        through_binding = self._through_binding
        for pid in members:
            target = grs[pid]
            log_out = changelog[pid]
            for sid in ctx.sites_by_caller[pid]:
                callee_pid = site_callee[sid]
                log = changelog[callee_pid]
                pos = cursor[sid]
                if pos >= len(log):
                    continue
                site = call_sites[sid]
                source = grs[callee_pid]
                site_table = self.site_sections[sid]
                formal_binding = self._formal_binding[sid]
                formals = formal_mask[callee_pid]
                locals_ = local_mask[callee_pid]
                seen = set()
                # ``log`` may grow while we drain it (self-recursive
                # sites append to their own callee's log); the loop
                # terminates because the lattice has finite height.
                while pos < len(log):
                    uid = log[pos]
                    pos += 1
                    if uid in seen:
                        continue  # Same fact, same current value.
                    seen.add(uid)
                    section = source[uid]
                    if (formals >> uid) & 1:
                        binding = formal_binding.get(uid)
                        if binding is None:
                            continue  # By-value actual: no channel back.
                        out_uid = binding.base.uid
                        translated = through_binding(section, site, binding)
                    elif (locals_ >> uid) & 1:
                        continue  # Deallocated on return.
                    else:
                        out_uid = uid
                        translated = translate(section, site)
                    if _merge_into(target, out_uid, translated, counter):
                        log_out.append(out_uid)
                        seen.discard(out_uid)
                        changed = True
                    _merge_into(site_table, out_uid, translated, counter)
                cursor[sid] = pos
        return changed

    def note_component(self, sweeps: int) -> None:
        self.component_iterations.append(sweeps)

    def finalize(self, ctx) -> None:
        # Nothing left to do: the per-site tables accumulated during
        # the sweeps (every cursor is at the end of its callee's final
        # changelog once the walk completes).
        pass

    # -- results -------------------------------------------------------------

    def to_analysis(self) -> SectionAnalysis:
        """The lane's result in the standalone solver's result type."""
        return SectionAnalysis(
            resolved=self.resolved,
            universe=self.universe,
            kind=self.kind,
            lattice_name=self.lattice.name,
            grs=self.grs,
            site_sections=self.site_sections,
            counter=self.counter,
            component_iterations=self.component_iterations,
        )

    def nonbottom_masks(self) -> List[int]:
        out = []
        for table in self.grs:
            mask = 0
            for uid, section in table.items():
                if not section.is_bottom:
                    mask |= 1 << uid
            out.append(mask)
        return out

    def to_payload(self) -> Dict:
        """JSON-safe lane block (deterministic: rendered per-site
        sections in site order, per-procedure non-⊥ masks in pid
        order)."""
        analysis = self.to_analysis()
        return {
            "lattice": self.lattice.name,
            "kind": self.kind.value,
            "sites": [
                analysis.describe_site(site)
                for site in self.resolved.call_sites
            ],
            "nonbottom": self.nonbottom_masks(),
        }

    def to_blob(self) -> bytes:
        return sections_payload_to_blob(self.to_payload())


# -- trailer-section codec (shared with core/persist.py) ---------------------


def sections_payload_to_blob(payload: Dict) -> bytes:
    """Binary form of the sections lane block: the non-⊥ masks ride the
    shard wire codec's signed-mask strips, the rendered site sections
    ride length-prefixed UTF-8."""
    from repro.shard.wire import write_signed_mask

    out = bytearray()
    write_bytes(out, payload["lattice"].encode("utf-8"))
    write_bytes(out, payload["kind"].encode("utf-8"))
    write_varint(out, len(payload["nonbottom"]))
    for mask in payload["nonbottom"]:
        write_signed_mask(out, mask)
    write_varint(out, len(payload["sites"]))
    for rendered in payload["sites"]:
        write_varint(out, len(rendered))
        for text in rendered:
            write_bytes(out, text.encode("utf-8"))
    return bytes(out)


def sections_payload_from_blob(data: bytes) -> Dict:
    from repro.shard.wire import read_signed_mask

    pos = 0
    lattice, pos = read_bytes(data, pos)
    kind, pos = read_bytes(data, pos)
    count, pos = read_varint(data, pos)
    nonbottom: List[int] = []
    for _ in range(count):
        mask, pos = read_signed_mask(data, pos)
        nonbottom.append(mask)
    count, pos = read_varint(data, pos)
    sites: List[List[str]] = []
    for _ in range(count):
        entries, pos = read_varint(data, pos)
        rendered: List[str] = []
        for _ in range(entries):
            blob, pos = read_bytes(data, pos)
            rendered.append(blob.decode("utf-8"))
        sites.append(rendered)
    return {
        "lattice": lattice.decode("utf-8"),
        "kind": kind.decode("utf-8"),
        "sites": sites,
        "nonbottom": nonbottom,
    }


SECTIONS_LANE = register_lane(
    LaneSpec(
        name="sections",
        description="Section 6 regular sections (Figure 3 lattice, MOD), "
        "delta-driven on the shared condensation",
        direction="up",
        mask_width=lambda arena: arena.width,
        make_state=SectionsLaneState,
        section_tag=3,  # == repro.core.persist.SECTION_LANE_SECTIONS
    )
)

#: The same delta-driven solver over the USE seeds: which array regions
#: a call may *read*.  :class:`SectionsLaneState` is kind-parametric —
#: only the local extraction differs — so the USE lane is a second
#: registration, not a second solver.
SECTIONS_USE_LANE = register_lane(
    LaneSpec(
        name="sections-use",
        description="Section 6 regular sections (Figure 3 lattice, USE), "
        "delta-driven on the shared condensation",
        direction="up",
        mask_width=lambda arena: arena.width,
        make_state=lambda arena: SectionsLaneState(arena, EffectKind.USE),
        section_tag=5,  # == repro.core.persist.SECTION_LANE_SECTIONS_USE
    )
)
