"""repro — a reproduction of Cooper & Kennedy,
*Interprocedural Side-Effect Analysis in Linear Time* (PLDI 1988).

Public API quick tour::

    from repro import analyze_side_effects, compile_source

    summary = analyze_side_effects(source_text)
    for site in summary.resolved.call_sites:
        print(site, summary.names(summary.mod_mask(site)))

Packages:

* :mod:`repro.lang` — the CK mini-language (parser, semantics,
  tracing interpreter);
* :mod:`repro.graphs` — call multi-graph, binding multi-graph, SCC/DFS;
* :mod:`repro.core` — the paper's algorithms (Figures 1 and 2, the
  multi-level nesting extension, DMOD/MOD assembly, alias pairs);
* :mod:`repro.baselines` — the solvers the paper improves upon;
* :mod:`repro.sections` — Section 6's regular section analysis;
* :mod:`repro.workloads` — program generators and a hand-written corpus;
* :mod:`repro.service` — the corpus-scale batch engine (parallel
  fan-out, summary caching, aggregate statistics).
"""

from repro.core.pipeline import analyze_side_effects
from repro.core.summary import SideEffectSummary
from repro.core.varsets import EffectKind, VariableUniverse
from repro.lang.semantic import compile_source
from repro.lang.parser import parse_program
from repro.lang.semantic import analyze
from repro.lang.builder import ProgramBuilder

__version__ = "1.0.0"

__all__ = [
    "analyze_side_effects",
    "SideEffectSummary",
    "EffectKind",
    "VariableUniverse",
    "compile_source",
    "parse_program",
    "analyze",
    "ProgramBuilder",
    "__version__",
]
