"""Named analysis sessions — the incremental serving state.

A session is the server-side mirror of one editor buffer: the most
recent resolved program, its live summary, and its serialized payload.
``analyze`` with a ``session`` field creates or resets one; ``update``
re-submits edited source and is routed through
:func:`repro.core.incremental.incremental_update` against the stored
summary, which is exactly the paper-lineage programming-environment
workflow (edit one procedure, keep the rest of the fixpoint).

The store is bounded: least-recently-used sessions are dropped when
``max_sessions`` is exceeded, and the eviction count is reported by
the ``stats`` verb so capacity pressure is visible.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.summary import SideEffectSummary


@dataclass
class Session:
    """One named incremental-analysis session."""

    name: str
    key: str  # Content hash of the current source + solver choice.
    gmod_method: str
    summary: SideEffectSummary
    payload: Dict
    created: float = field(default_factory=time.time)
    analyzes: int = 0
    updates: int = 0
    #: Extra effect lanes this session was analyzed with (lane names,
    #: request order); () for plain MOD+USE sessions.
    lanes: tuple = ()
    #: ``UpdateStats`` of the most recent ``update``, as a dict.
    last_update: Optional[Dict] = None

    def brief(self) -> Dict:
        return {
            "name": self.name,
            "key": self.key,
            "gmod_method": self.gmod_method,
            "lanes": list(self.lanes),
            "num_procs": self.summary.resolved.num_procs,
            "analyzes": self.analyzes,
            "updates": self.updates,
            "last_update": self.last_update,
        }


class SessionStore:
    """Bounded, LRU-evicted mapping of session name → :class:`Session`."""

    def __init__(self, max_sessions: int):
        self.max_sessions = max_sessions
        self._sessions: "OrderedDict[str, Session]" = OrderedDict()
        self.created = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._sessions)

    def get(self, name: str) -> Optional[Session]:
        session = self._sessions.get(name)
        if session is not None:
            self._sessions.move_to_end(name)
        return session

    def put(self, session: Session) -> None:
        if session.name not in self._sessions:
            self.created += 1
        self._sessions[session.name] = session
        self._sessions.move_to_end(session.name)
        while len(self._sessions) > self.max_sessions:
            self._sessions.popitem(last=False)
            self.evictions += 1

    def names(self) -> List[str]:
        return list(self._sessions)

    def to_dict(self) -> Dict:
        return {
            "max_sessions": self.max_sessions,
            "active": len(self._sessions),
            "created": self.created,
            "evictions": self.evictions,
            "names": self.names(),
        }
