"""In-memory LRU of resolved analyses.

The daemon keys this by the same content hash as the disk
:class:`repro.service.cache.SummaryCache`, but holds *live* values —
the :class:`~repro.core.summary.SideEffectSummary` plus its serialized
payload — so a warm ``analyze`` can both answer instantly and seed an
incremental session without re-solving.  The disk cache cannot do
that: JSON round-trips only the name-level sets.

Single-threaded by construction: the daemon mutates the cache from
event-loop coroutines only (solver work happens in executor threads,
bookkeeping does not), so no lock is needed.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, Hashable, Optional


class LRUCache:
    """Bounded mapping with move-to-front on hit and hit/miss/eviction
    counters.  ``capacity <= 0`` disables storage entirely (every get
    is a miss, every put a no-op) so the daemon can run cache-free."""

    def __init__(self, capacity: int):
        self.capacity = capacity
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def get(self, key: Hashable) -> Optional[Any]:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key: Hashable, value: Any) -> None:
        if self.capacity <= 0:
            return
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = value
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def hit_rate(self) -> float:
        looked = self.hits + self.misses
        return self.hits / looked if looked else 0.0

    def to_dict(self) -> Dict:
        return {
            "capacity": self.capacity,
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate(),
        }
