"""Blocking client for the analysis daemon.

Deliberately synchronous — scripting, tests, and CI smoke jobs want a
plain socket they can reason about, not an event loop.  One client
holds one connection and pipelines requests serially over it; create
one client per thread for concurrent load (the daemon multiplexes
connections, not the client).
"""

from __future__ import annotations

import socket
import time
from typing import Any, Dict, Optional

from repro.server.protocol import MAX_PAYLOAD_DEFAULT, decode, encode


class ServerError(Exception):
    """An ``ok: false`` response, surfaced as an exception.

    ``code`` is the protocol error code (``timeout``, ``overloaded``,
    ``unknown_session``, …); ``response`` is the full decoded reply.
    """

    def __init__(self, response: Dict[str, Any]):
        error = response.get("error") or {}
        self.code = error.get("code", "unknown")
        self.response = response
        super().__init__("%s: %s" % (self.code, error.get("message", "")))


class ServerClient:
    """Line-delimited JSON client; context-manager closes the socket."""

    def __init__(
        self,
        port: int,
        host: str = "127.0.0.1",
        timeout: float = 60.0,
        max_payload: int = MAX_PAYLOAD_DEFAULT,
    ):
        self.host = host
        self.port = port
        self.max_payload = max_payload
        self._next_id = 0
        self._socket = socket.create_connection((host, port), timeout=timeout)
        self._file = self._socket.makefile("rwb")

    # -- plumbing ------------------------------------------------------------

    def request_raw(self, verb: str, **fields: Any) -> Dict[str, Any]:
        """Send one request, return the decoded response dict as-is
        (``ok`` may be false; nothing raises but transport errors)."""
        self._next_id += 1
        message: Dict[str, Any] = {"verb": verb, "id": self._next_id}
        message.update(fields)
        self._file.write(encode(message))
        self._file.flush()
        line = self._file.readline(self.max_payload + 1)
        if not line:
            raise ConnectionError("server closed the connection")
        return decode(line)

    def request(self, verb: str, **fields: Any) -> Dict[str, Any]:
        """Send one request; raise :class:`ServerError` on failure."""
        response = self.request_raw(verb, **fields)
        if not response.get("ok"):
            raise ServerError(response)
        return response

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._socket.close()

    def __enter__(self) -> "ServerClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- verbs ---------------------------------------------------------------

    def ping(self) -> Dict[str, Any]:
        return self.request("ping")

    def analyze(
        self,
        source: str,
        session: Optional[str] = None,
        gmod_method: str = "auto",
        **extra: Any,
    ) -> Dict[str, Any]:
        fields: Dict[str, Any] = {"source": source, "gmod_method": gmod_method}
        if session is not None:
            fields["session"] = session
        fields.update(extra)
        return self.request("analyze", **fields)

    def update(self, session: str, source: str, **extra: Any) -> Dict[str, Any]:
        return self.request("update", session=session, source=source, **extra)

    def query(self, session: str, select: str, **params: Any) -> Dict[str, Any]:
        return self.request("query", session=session, select=select, **params)

    def stats(self) -> Dict[str, Any]:
        return self.request("stats")["stats"]

    def shutdown(self) -> Dict[str, Any]:
        return self.request("shutdown")


def wait_for_server(
    port: int, host: str = "127.0.0.1", deadline: float = 30.0
) -> ServerClient:
    """Poll until the daemon accepts connections and answers ``ping``
    (CI smoke jobs race the daemon's startup); returns a live client."""
    end = time.monotonic() + deadline
    last_error: Optional[Exception] = None
    while time.monotonic() < end:
        try:
            client = ServerClient(port=port, host=host, timeout=deadline)
            client.ping()
            return client
        except (OSError, ConnectionError) as error:
            last_error = error
            time.sleep(0.05)
    raise ConnectionError(
        "no analysis server on %s:%d after %.3gs (%s)"
        % (host, port, deadline, last_error)
    )
