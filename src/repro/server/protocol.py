"""Wire protocol for the analysis server.

One request or response per line, each a single JSON object, UTF-8,
newline-terminated — the classic LSP-adjacent "JSON lines" framing,
chosen because every client language can speak it with nothing but a
socket and a JSON library.

A request carries ``verb`` (one of :data:`VERBS`), an optional caller
``id`` (echoed back verbatim so clients may pipeline), and
verb-specific fields.  A response carries ``ok``; successful responses
add verb-specific payload fields, failures add an ``error`` object
``{"code", "message"}`` with ``code`` drawn from the ``E_*`` constants
so scripts can branch without parsing prose.

The protocol is versioned (:data:`PROTOCOL_VERSION`): ``ping`` and
``stats`` report it, and the version is bumped whenever a field is
renamed or re-typed, mirroring how the persist layer versions its
on-disk schema.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

#: Bump on any incompatible change to request/response shapes.
PROTOCOL_VERSION = 1

#: Default cap on one request line (bytes), including the newline.
MAX_PAYLOAD_DEFAULT = 4 * 1024 * 1024

VERBS = ("analyze", "update", "query", "stats", "ping", "shutdown")

# Error codes — stable strings, part of the protocol.
E_BAD_REQUEST = "bad_request"  # Not JSON / not an object / bad field.
E_UNKNOWN_VERB = "unknown_verb"
E_PAYLOAD_TOO_LARGE = "payload_too_large"
E_ANALYSIS_ERROR = "analysis_error"  # Source failed to parse/resolve.
E_TIMEOUT = "timeout"  # Per-request deadline exceeded.
E_OVERLOADED = "overloaded"  # Queue-depth cap hit; retry later.
E_UNKNOWN_SESSION = "unknown_session"
E_SHUTTING_DOWN = "shutting_down"
E_INTERNAL = "internal_error"


class ProtocolError(Exception):
    """A request-level failure with a protocol error code attached."""

    def __init__(self, code: str, message: str):
        super().__init__(message)
        self.code = code


def encode(message: Dict[str, Any]) -> bytes:
    """One JSON line, compact separators, sorted keys (deterministic)."""
    return (
        json.dumps(message, sort_keys=True, separators=(",", ":")) + "\n"
    ).encode("utf-8")


def decode(line: bytes) -> Dict[str, Any]:
    """Parse one request line; raises :class:`ProtocolError` on garbage."""
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as error:
        raise ProtocolError(E_BAD_REQUEST, "request is not valid JSON: %s" % error)
    if not isinstance(message, dict):
        raise ProtocolError(
            E_BAD_REQUEST, "request must be a JSON object, got %s" % type(message).__name__
        )
    return message


def ok_response(request_id: Any, verb: Optional[str], **fields: Any) -> Dict[str, Any]:
    response: Dict[str, Any] = {"ok": True, "id": request_id, "verb": verb}
    response.update(fields)
    return response


def error_response(
    request_id: Any, verb: Optional[str], code: str, message: str
) -> Dict[str, Any]:
    return {
        "ok": False,
        "id": request_id,
        "verb": verb,
        "error": {"code": code, "message": message},
    }


def require_str(request: Dict[str, Any], field: str) -> str:
    """Fetch a mandatory string field or raise ``bad_request``."""
    value = request.get(field)
    if not isinstance(value, str) or not value:
        raise ProtocolError(
            E_BAD_REQUEST, "field %r must be a non-empty string" % field
        )
    return value
