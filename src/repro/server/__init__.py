"""Analysis server: demand-driven MOD/USE serving.

Where :mod:`repro.service` makes the *whole-corpus* economics work
(every request pays a process cold-start), this package keeps the
analysis resident: a long-running daemon (``ck-analyze serve``) holds
live summaries in an LRU, serves per-site/per-procedure queries over
them, and re-analyzes edited sources *incrementally* inside named
sessions via :mod:`repro.core.incremental` — the paper's
programming-environment deployment, as a service.

* :mod:`repro.server.protocol` — line-delimited JSON over TCP,
  versioned, with stable error codes;
* :mod:`repro.server.daemon` — the :mod:`asyncio` server: bounded
  solver pool, queue-depth backpressure, per-request timeouts,
  graceful drain;
* :mod:`repro.server.sessions` / :mod:`repro.server.lru` — the
  serving state: named incremental sessions and the live-summary LRU;
* :mod:`repro.server.metrics` — latency histograms, phase times,
  cache counters (``stats`` verb / ``--metrics-json``);
* :mod:`repro.server.client` — the blocking :class:`ServerClient`
  behind ``ck-analyze query``.
"""

from repro.server.client import ServerClient, ServerError, wait_for_server
from repro.server.daemon import AnalysisServer, ServerConfig, ServerThread
from repro.server.metrics import LatencyHistogram, ServerMetrics
from repro.server.protocol import PROTOCOL_VERSION, VERBS, ProtocolError
from repro.server.sessions import Session, SessionStore
from repro.server.lru import LRUCache

__all__ = [
    "AnalysisServer",
    "ServerConfig",
    "ServerThread",
    "ServerClient",
    "ServerError",
    "wait_for_server",
    "ServerMetrics",
    "LatencyHistogram",
    "LRUCache",
    "Session",
    "SessionStore",
    "ProtocolError",
    "PROTOCOL_VERSION",
    "VERBS",
]
