"""Server observability: request counters, latency histograms,
solver phase-time accumulation.

Everything here is exposed two ways: live via the ``stats`` verb, and
as a ``--metrics-json`` dump written when the daemon exits, so a CI
smoke run or a long soak leaves a machine-readable record.  The
histogram uses fixed logarithmic millisecond buckets (the usual
Prometheus-style cumulative-friendly shape) rather than reservoir
sampling — bounded memory, deterministic output.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

#: Upper edges (milliseconds) of the latency buckets; one overflow
#: bucket is appended implicitly.
LATENCY_BUCKETS_MS = (1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000)


class LatencyHistogram:
    """Fixed-bucket latency histogram over one request class."""

    def __init__(self):
        self.counts: List[int] = [0] * (len(LATENCY_BUCKETS_MS) + 1)
        self.count = 0
        self.total_ms = 0.0
        self.max_ms = 0.0

    def observe(self, seconds: float) -> None:
        ms = seconds * 1000.0
        self.count += 1
        self.total_ms += ms
        if ms > self.max_ms:
            self.max_ms = ms
        for index, edge in enumerate(LATENCY_BUCKETS_MS):
            if ms <= edge:
                self.counts[index] += 1
                return
        self.counts[-1] += 1

    def mean_ms(self) -> float:
        return self.total_ms / self.count if self.count else 0.0

    def to_dict(self) -> Dict:
        buckets = {
            "<=%dms" % edge: self.counts[index]
            for index, edge in enumerate(LATENCY_BUCKETS_MS)
        }
        buckets[">%dms" % LATENCY_BUCKETS_MS[-1]] = self.counts[-1]
        return {
            "count": self.count,
            "mean_ms": self.mean_ms(),
            "max_ms": self.max_ms,
            "buckets": buckets,
        }


class ServerMetrics:
    """All daemon-lifetime counters, aggregated in one place."""

    def __init__(self):
        self.started = time.time()
        self._started_monotonic = time.monotonic()
        self.requests: Dict[str, int] = {}
        self.errors: Dict[str, int] = {}
        self.latency: Dict[str, LatencyHistogram] = {}
        #: Solver phase → summed wall seconds, from pipeline timings of
        #: every non-cached ``analyze`` this daemon performed.
        self.phase_seconds: Dict[str, float] = {}
        self.analyses = 0
        self.sharded_analyses = 0
        #: ``shard_info`` of the most recent sharded analyze (partition
        #: shape + per-phase solver stats), for the ``stats`` verb.
        self.last_shard_info: Optional[Dict] = None
        self.incremental_updates = 0
        self.reused_procs = 0
        self.affected_procs = 0
        self.region_procs = 0
        self.affected_sccs = 0
        self.cutoff_sccs = 0
        self.total_sccs = 0
        self.reloaded_updates = 0
        self.full_resolves = 0
        self.connections = 0

    def uptime(self) -> float:
        return time.monotonic() - self._started_monotonic

    def observe_request(
        self, verb: str, seconds: float, ok: bool, error_code: Optional[str] = None
    ) -> None:
        self.requests[verb] = self.requests.get(verb, 0) + 1
        if not ok and error_code:
            self.errors[error_code] = self.errors.get(error_code, 0) + 1
        histogram = self.latency.get(verb)
        if histogram is None:
            histogram = self.latency[verb] = LatencyHistogram()
        histogram.observe(seconds)

    def observe_phases(self, timings: Dict[str, float]) -> None:
        self.analyses += 1
        for phase, seconds in timings.items():
            self.phase_seconds[phase] = self.phase_seconds.get(phase, 0.0) + seconds

    def observe_sharded(self, shard_info: Optional[Dict]) -> None:
        self.sharded_analyses += 1
        if shard_info is not None:
            self.last_shard_info = shard_info

    def observe_update(self, stats) -> None:
        """Accumulate one ``UpdateStats`` from an ``update`` request."""
        self.incremental_updates += 1
        self.reused_procs += stats.reused_procs
        self.affected_procs += stats.affected_procs
        self.region_procs += stats.region_procs
        self.affected_sccs += stats.affected_sccs
        self.cutoff_sccs += stats.cutoff_sccs
        self.total_sccs += stats.total_sccs
        if stats.index_reloaded:
            self.reloaded_updates += 1
        if stats.full_resolve:
            self.full_resolves += 1

    def to_dict(self) -> Dict:
        touched = self.reused_procs + self.affected_procs
        return {
            "uptime_seconds": self.uptime(),
            "connections": self.connections,
            "requests": dict(self.requests),
            "errors": dict(self.errors),
            "latency_ms": {
                verb: histogram.to_dict()
                for verb, histogram in sorted(self.latency.items())
            },
            "phase_seconds": dict(self.phase_seconds),
            "analyses": self.analyses,
            "sharded": {
                "analyses": self.sharded_analyses,
                "last_shard_info": self.last_shard_info,
            },
            "incremental": {
                "updates": self.incremental_updates,
                "reused_procs": self.reused_procs,
                "affected_procs": self.affected_procs,
                "reuse_fraction": self.reused_procs / touched if touched else 0.0,
                "region_procs": self.region_procs,
                "affected_sccs": self.affected_sccs,
                "cutoff_sccs": self.cutoff_sccs,
                "total_sccs": self.total_sccs,
                "scc_reuse_fraction": (
                    1.0 - self.affected_sccs / self.total_sccs
                    if self.total_sccs
                    else 0.0
                ),
                "reloaded_updates": self.reloaded_updates,
                "full_resolves": self.full_resolves,
            },
        }
