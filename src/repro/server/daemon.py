"""The analysis daemon: ``ck-analyze serve``.

A long-running :mod:`asyncio` TCP server that keeps summaries hot so
clients never pay the batch engine's cold start.  Layering, front to
back, on an ``analyze`` request:

1. the in-memory :class:`~repro.server.lru.LRUCache` of *live*
   summaries (content-hash keyed, same key function as the disk
   cache) — a hit answers immediately and can still seed a session;
2. the on-disk :class:`~repro.service.cache.SummaryCache` shared with
   ``ck-analyze batch`` — a hit serves the stored payload without
   re-solving (skipped when the request opens a session, which needs
   the live object);
3. the full pipeline, run on a bounded thread pool so the event loop
   stays responsive.

Robustness contract (each clause has a test):

* **backpressure** — at most ``max_concurrent`` solves run at once and
  at most ``max_queue`` more may wait; past that, requests fail fast
  with an ``overloaded`` error instead of piling up latency;
* **timeouts** — every request is raced against ``request_timeout``
  and reports a ``timeout`` error when it loses (the worker thread is
  abandoned, not killed — CPython cannot interrupt it — so the pool
  bound still limits total concurrent work);
* **payload guard** — a request line longer than ``max_payload`` gets
  a ``payload_too_large`` error and the connection is closed (framing
  is lost at that point);
* **graceful drain** — SIGINT/SIGTERM or the ``shutdown`` verb stop
  accepting work, let in-flight requests finish (up to
  ``drain_timeout``), then exit; late requests get ``shutting_down``.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple

from repro.core.pipeline import (
    GMOD_METHODS,
    analyze_side_effects,
    payload_from_summary,
)
from repro.lang.errors import CkError
from repro.server.lru import LRUCache
from repro.server.metrics import ServerMetrics
from repro.server.protocol import (
    E_ANALYSIS_ERROR,
    E_BAD_REQUEST,
    E_INTERNAL,
    E_OVERLOADED,
    E_PAYLOAD_TOO_LARGE,
    E_SHUTTING_DOWN,
    E_TIMEOUT,
    E_UNKNOWN_SESSION,
    E_UNKNOWN_VERB,
    MAX_PAYLOAD_DEFAULT,
    PROTOCOL_VERSION,
    VERBS,
    ProtocolError,
    decode,
    encode,
    error_response,
    ok_response,
    require_str,
)
from repro.server.sessions import Session, SessionStore
from repro.service.cache import SummaryCache, content_key

#: Sessions whose arena image would exceed this are persisted without
#: one.  The ``.cka`` image stores fixed-width mask rows (``words × 8``
#: bytes each), so a wide-but-sparse universe inflates it far past the
#: container size — the estimator gates the write, the ``.cki`` alone
#: still restores the session.
ARENA_IMAGE_CAP_BYTES = (
    int(os.environ.get("CK_ARENA_IMAGE_MAX_MB", "256")) * 1024 * 1024
)


@dataclass
class ServerConfig:
    """Everything ``ck-analyze serve`` exposes as flags."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 → ephemeral; the bound port is printed/reported.
    max_concurrent: int = 4  # Solver threads.
    max_queue: int = 16  # Waiting solves beyond that → overloaded.
    request_timeout: float = 30.0  # Seconds per request.
    max_payload: int = MAX_PAYLOAD_DEFAULT  # Bytes per request line.
    lru_size: int = 64  # Live summaries kept in memory.
    max_sessions: int = 32
    cache_dir: str = ""  # Optional disk summary cache (batch-shared).
    cache_max_entries: Optional[int] = None  # Disk-cache LRU bound.
    #: Optional session-state directory.  When set, every session's
    #: summary is persisted as a v4 container with its dependency index
    #: after each analyze/update, and an ``update`` for a session this
    #: process has never seen reloads that index and re-solves only the
    #: invalidated region — incremental serving survives restarts.
    state_dir: str = ""
    drain_timeout: float = 10.0  # Grace period for in-flight work.
    #: Shard worker processes for ``analyze`` requests that carry a
    #: ``"shards"`` field (1 = solve shards in-process; the solver
    #: thread pool is the daemon's primary concurrency).
    shard_jobs: int = 1
    #: Fleet coordinator port (None = no fleet; 0 = ephemeral).  When
    #: set the daemon hosts a :class:`repro.fleet.FleetCoordinator`;
    #: ``ck-analyze worker`` processes dial in and sharded analyze
    #: requests fan their per-shard work out to them.  With no workers
    #: connected the solve runs in-process — never fails.
    fleet_port: Optional[int] = None
    fleet_host: str = "127.0.0.1"
    #: ``HOST:PORT`` of a fleet summary store to consult between the
    #: disk cache and a fresh solve ("" = none).
    fleet_store: str = ""
    #: Test hook: honor a ``"sleep": seconds`` request field inside the
    #: worker (deterministic timeout/overload tests).  Never enable in
    #: production serving.
    allow_sleep: bool = False

    def to_dict(self) -> Dict:
        return {
            "host": self.host,
            "port": self.port,
            "max_concurrent": self.max_concurrent,
            "max_queue": self.max_queue,
            "request_timeout": self.request_timeout,
            "max_payload": self.max_payload,
            "lru_size": self.lru_size,
            "max_sessions": self.max_sessions,
            "cache_dir": self.cache_dir,
            "cache_max_entries": self.cache_max_entries,
            "state_dir": self.state_dir,
            "drain_timeout": self.drain_timeout,
            "shard_jobs": self.shard_jobs,
            "fleet_port": self.fleet_port,
            "fleet_host": self.fleet_host,
            "fleet_store": self.fleet_store,
        }


class AnalysisServer:
    """One daemon instance; create, ``await start()``, then
    ``await serve_until_shutdown()`` (or use :class:`ServerThread`)."""

    def __init__(self, config: Optional[ServerConfig] = None):
        self.config = config or ServerConfig()
        self.metrics = ServerMetrics()
        self.lru = LRUCache(self.config.lru_size)
        self.sessions = SessionStore(self.config.max_sessions)
        self.disk_cache = (
            SummaryCache(
                self.config.cache_dir, max_entries=self.config.cache_max_entries
            )
            if self.config.cache_dir
            else None
        )
        if self.config.state_dir:
            os.makedirs(self.config.state_dir, exist_ok=True)
        self.address: Tuple[str, int] = (self.config.host, self.config.port)
        #: Fleet pieces, live between start() and shutdown when
        #: configured (see ServerConfig.fleet_port / fleet_store).
        self.fleet = None
        self.remote_store = None
        self._store_lock = threading.Lock()
        self._server: Optional[asyncio.AbstractServer] = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self._semaphore: Optional[asyncio.Semaphore] = None
        self._shutdown_event: Optional[asyncio.Event] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._draining = False
        self._active = 0  # Heavy (solver) requests admitted right now.
        self._connections: set = set()  # Live (task, writer) pairs.

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> Tuple[str, int]:
        """Bind and start accepting; returns the bound ``(host, port)``."""
        self._loop = asyncio.get_running_loop()
        self._shutdown_event = asyncio.Event()
        self._semaphore = asyncio.Semaphore(self.config.max_concurrent)
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.max_concurrent,
            thread_name_prefix="ck-solver",
        )
        if self.config.fleet_port is not None:
            from repro.fleet.coordinator import FleetCoordinator

            self.fleet = FleetCoordinator(
                host=self.config.fleet_host, port=self.config.fleet_port
            ).start()
        if self.config.fleet_store:
            from repro.fleet.store import RemoteSummaryStore

            host, _, port = self.config.fleet_store.rpartition(":")
            self.remote_store = RemoteSummaryStore(
                host or "127.0.0.1", int(port)
            )
        self._server = await asyncio.start_server(
            self._handle_connection,
            host=self.config.host,
            port=self.config.port,
            limit=self.config.max_payload,
        )
        sockname = self._server.sockets[0].getsockname()
        self.address = (sockname[0], sockname[1])
        return self.address

    async def serve_until_shutdown(self) -> None:
        """Block until shutdown is requested, then drain and close."""
        assert self._server is not None and self._shutdown_event is not None
        try:
            await self._shutdown_event.wait()
        finally:
            self._server.close()
            await self._server.wait_closed()
            deadline = time.monotonic() + self.config.drain_timeout
            while self._active > 0 and time.monotonic() < deadline:
                await asyncio.sleep(0.01)
            # Give handlers a moment to flush in-flight responses (the
            # shutdown acknowledgement in particular) and hang up on
            # their own, then hard-close whoever is left — a task
            # cancelled at loop teardown logs a spurious CancelledError
            # from the streams machinery.
            grace_end = time.monotonic() + 0.5
            while self._connections and time.monotonic() < grace_end:
                await asyncio.sleep(0.01)
            for task, writer in list(self._connections):
                writer.close()
            tasks = [task for task, _ in self._connections]
            if tasks:
                await asyncio.wait(tasks, timeout=1.0)
            if self._executor is not None:
                self._executor.shutdown(wait=False)
            if self.fleet is not None:
                self.fleet.stop()
            if self.remote_store is not None:
                self.remote_store.close()

    async def run(self) -> None:
        await self.start()
        await self.serve_until_shutdown()

    def request_shutdown(self) -> None:
        """Thread/signal-safe and idempotent: begin graceful drain."""
        self._draining = True
        if self._loop is not None and self._shutdown_event is not None:
            try:
                self._loop.call_soon_threadsafe(self._shutdown_event.set)
            except RuntimeError:
                pass  # Loop already closed — shutdown is complete.

    # -- connection handling -------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.metrics.connections += 1
        entry = (asyncio.current_task(), writer)
        self._connections.add(entry)
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    # Oversized line: framing is gone; report and close.
                    writer.write(
                        encode(
                            error_response(
                                None,
                                None,
                                E_PAYLOAD_TOO_LARGE,
                                "request line exceeds %d bytes"
                                % self.config.max_payload,
                            )
                        )
                    )
                    await writer.drain()
                    break
                if not line:
                    break
                if line.strip() == b"":
                    continue
                response = await self._dispatch_line(line)
                writer.write(encode(response))
                await writer.drain()
                if self._draining:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._connections.discard(entry)

    async def _dispatch_line(self, line: bytes) -> Dict[str, Any]:
        tick = time.perf_counter()
        request_id: Any = None
        verb: Optional[str] = None
        try:
            request = decode(line)
            request_id = request.get("id")
            verb = request.get("verb")
            if verb not in VERBS:
                raise ProtocolError(
                    E_UNKNOWN_VERB,
                    "unknown verb %r; expected one of %s" % (verb, list(VERBS)),
                )
            if self._draining and verb != "stats":
                raise ProtocolError(E_SHUTTING_DOWN, "server is draining")
            handler = getattr(self, "_verb_%s" % verb)
            response = await asyncio.wait_for(
                handler(request_id, request), timeout=self.config.request_timeout
            )
        except asyncio.TimeoutError:
            response = error_response(
                request_id,
                verb,
                E_TIMEOUT,
                "request exceeded %.3gs" % self.config.request_timeout,
            )
        except ProtocolError as error:
            response = error_response(request_id, verb, error.code, str(error))
        except CkError as error:
            response = error_response(
                request_id,
                verb,
                E_ANALYSIS_ERROR,
                "%s: %s" % (type(error).__name__, error),
            )
        except Exception as error:  # Defensive: one bad request ≠ dead server.
            response = error_response(
                request_id, verb, E_INTERNAL, "%s: %s" % (type(error).__name__, error)
            )
        error_obj = response.get("error")
        self.metrics.observe_request(
            verb or "invalid",
            time.perf_counter() - tick,
            bool(response.get("ok")),
            error_obj["code"] if error_obj else None,
        )
        return response

    # -- heavy-work plumbing -------------------------------------------------

    async def _run_heavy(self, work: Callable[[], Any]) -> Any:
        """Run ``work`` on the solver pool under admission control."""
        limit = self.config.max_concurrent + self.config.max_queue
        if self._active >= limit:
            raise ProtocolError(
                E_OVERLOADED,
                "server at capacity (%d running/queued, limit %d); retry later"
                % (self._active, limit),
            )
        assert self._semaphore is not None and self._executor is not None
        self._active += 1
        try:
            async with self._semaphore:
                return await asyncio.get_running_loop().run_in_executor(
                    self._executor, work
                )
        finally:
            self._active -= 1

    def _request_sleep(self, request: Dict[str, Any]) -> float:
        if not self.config.allow_sleep:
            return 0.0
        try:
            return max(0.0, float(request.get("sleep", 0)))
        except (TypeError, ValueError):
            return 0.0

    @staticmethod
    def _shards(request: Dict[str, Any]) -> Optional[int]:
        shards = request.get("shards")
        if shards is None:
            return None
        if isinstance(shards, bool) or not isinstance(shards, int) or shards < 1:
            raise ProtocolError(
                E_BAD_REQUEST,
                "field 'shards' must be a positive integer, got %r" % (shards,),
            )
        return shards

    @staticmethod
    def _partition(request: Dict[str, Any]) -> str:
        """Shard partitioner strategy from the optional ``partition``
        field (used with ``shards``; summaries are bit-identical
        across strategies, so it never feeds the cache key)."""
        from repro.shard.partition import STRATEGIES

        strategy = request.get("partition", "greedy")
        if strategy not in STRATEGIES:
            raise ProtocolError(
                E_BAD_REQUEST,
                "field 'partition' must be one of %s, got %r"
                % (STRATEGIES, strategy),
            )
        return strategy

    @staticmethod
    def _gmod_method(request: Dict[str, Any]) -> str:
        method = request.get("gmod_method", "auto")
        if method not in GMOD_METHODS:
            raise ProtocolError(
                E_BAD_REQUEST,
                "gmod_method must be one of %s, got %r" % (GMOD_METHODS, method),
            )
        return method

    @staticmethod
    def _lanes(request: Dict[str, Any]) -> tuple:
        """Validated effect-lane names from the optional ``lanes``
        field (a comma-joined string or a list of names)."""
        raw = request.get("lanes")
        if raw is None or raw == "" or raw == []:
            return ()
        from repro.lanes import parse_lane_names

        if isinstance(raw, list):
            raw = ",".join(str(item) for item in raw)
        if not isinstance(raw, str):
            raise ProtocolError(
                E_BAD_REQUEST, "field 'lanes' must be a string or list of lane names"
            )
        try:
            return tuple(parse_lane_names(raw))
        except ValueError as exc:
            raise ProtocolError(E_BAD_REQUEST, str(exc))

    # -- session persistence -------------------------------------------------

    def _session_state_path(self, name: str) -> str:
        digest = hashlib.sha256(name.encode("utf-8")).hexdigest()[:24]
        return os.path.join(self.config.state_dir, digest + ".cki")

    def _session_arena_path(self, name: str) -> str:
        """The arena image riding beside a session's state file."""
        root, _ext = os.path.splitext(self._session_state_path(name))
        return root + ".cka"

    def _persist_session(self, session: Session) -> None:
        """Write a session's summary + dependency index + metadata as a
        v4 container (atomic rename) — runs on the solver pool."""
        from repro.core.arena import peek_arena
        from repro.core.depindex import build_dependency_index, index_to_bytes
        from repro.core.persist import (
            SECTION_DEP_INDEX,
            SECTION_SESSION_META,
            encode_summary_payload,
            summary_to_dict,
        )

        summary = session.summary
        index = getattr(summary, "dep_index", None)
        if index is None:
            index = build_dependency_index(
                summary, arena=peek_arena(summary.resolved)
            )
            summary.dep_index = index
        meta = {"name": session.name, "gmod_method": session.gmod_method,
                "key": session.key, "lanes": list(session.lanes)}
        sections = {
            SECTION_DEP_INDEX: index_to_bytes(index),
            SECTION_SESSION_META: json.dumps(
                meta, sort_keys=True
            ).encode("utf-8"),
        }
        if summary.lanes:
            from repro.lanes.driver import lane_blobs

            sections.update(lane_blobs(summary.lanes))
        blob = encode_summary_payload(summary_to_dict(summary), sections=sections)
        path = self._session_state_path(session.name)
        tmp = path + ".tmp"
        with open(tmp, "wb") as handle:
            handle.write(blob)
        os.replace(tmp, path)

        # The arena image rides beside the state file: a restarted
        # daemon re-serving this session memory-maps it and skips the
        # whole arena build (binding walk, call graph, local sweep).
        # Pinned to the session key, so an image for a stale source
        # revision is refused at load instead of silently reused.
        from repro.core.arena import arena_image_nbytes, write_arena_image

        arena = peek_arena(summary.resolved)
        arena_path = self._session_arena_path(session.name)
        backing = getattr(arena, "_arena_image", None) if arena is not None else None
        if backing is not None and backing.digest == session.key.encode("utf-8"):
            pass  # This arena *is* the on-disk image; nothing to rewrite.
        elif arena is not None and arena_image_nbytes(arena) <= ARENA_IMAGE_CAP_BYTES:
            try:
                write_arena_image(
                    arena, arena_path, digest=session.key.encode("utf-8")
                )
            except OSError:
                pass  # Best-effort: the .cki alone restores the session.
        else:
            try:
                os.unlink(arena_path)  # Drop an image for an older revision.
            except OSError:
                pass

    async def _save_session_state(self, session: Session) -> None:
        if not self.config.state_dir:
            return
        assert self._executor is not None
        await asyncio.get_running_loop().run_in_executor(
            self._executor, self._persist_session, session
        )

    def _load_session_state(self, name: str):
        """``(dep_index or None, gmod_method)`` for a persisted session,
        or ``None`` when nothing usable is on disk.  A legacy container
        without an index section (or an index this reader cannot parse)
        degrades to ``(None, method)`` — the update falls back to a
        full re-solve instead of failing the session."""
        if not self.config.state_dir:
            return None
        from repro.core.depindex import index_from_bytes
        from repro.core.persist import (
            SECTION_DEP_INDEX,
            SECTION_SESSION_META,
            load_summary_container_file,
            split_unknown_sections,
        )

        path = self._session_state_path(name)
        try:
            # mmap-decode: the container is walked over the mapped
            # pages, not pulled through a read buffer first.
            _payload, sections = load_summary_container_file(path)
        except OSError:
            return None
        except ValueError:
            return None
        # A state file written by a newer build may carry sections this
        # reader has never heard of (a future lane, a new index kind) —
        # warn once and proceed on what we understand.
        sections, _future = split_unknown_sections(
            sections, context="session state %r" % name
        )
        method = "auto"
        meta_blob = sections.get(SECTION_SESSION_META)
        if meta_blob is not None:
            try:
                meta = json.loads(meta_blob.decode("utf-8"))
                method = meta.get("gmod_method", method)
            except (ValueError, UnicodeDecodeError):
                pass
        index = None
        index_blob = sections.get(SECTION_DEP_INDEX)
        if index_blob is not None:
            try:
                index = index_from_bytes(index_blob)
            except ValueError:
                index = None  # Version drift → full-re-solve downgrade.
        return index, method

    def _warm_session_arena(self, name: str, key: str, source: str):
        """``(resolved, arena)`` rebuilt zero-copy from the session's
        memory-mapped ``.cka`` image, or None when no image matches this
        exact source revision (absent file, digest mismatch, format
        drift) — the caller then falls back to the cold build.  Runs on
        the solver pool."""
        if not self.config.state_dir:
            return None
        from repro.core.arena import (
            arena_from_image,
            install_arena,
            load_arena_image,
        )
        from repro.lang.lexer import tokenize_stream
        from repro.lang.parser import parse_token_stream
        from repro.lang.semantic import analyze as semantic_analyze

        try:
            image = load_arena_image(self._session_arena_path(name))
        except (OSError, ValueError):
            return None
        try:
            resolved = semantic_analyze(parse_token_stream(tokenize_stream(source)))
            arena = arena_from_image(
                resolved, image, expect_digest=key.encode("utf-8")
            )
        except (CkError, ValueError):
            image.close()
            return None
        # Register the warm arena so everything downstream keyed on the
        # resolved program (session persistence, lanes, dep indexing)
        # sees this lowering instead of rebuilding its own.
        install_arena(resolved, arena)
        return resolved, arena

    # -- verbs ---------------------------------------------------------------

    async def _verb_ping(self, request_id: Any, request: Dict) -> Dict:
        return ok_response(request_id, "ping", protocol=PROTOCOL_VERSION)

    def _store_get(self, key: str):
        """Serialized access to the (not thread-safe) store client from
        the solver threads; an unreachable store is a miss."""
        with self._store_lock:
            return self.remote_store.get(key)

    def _store_put(self, key: str, payload: Dict) -> None:
        with self._store_lock:
            self.remote_store.put(key, payload)

    async def _verb_analyze(self, request_id: Any, request: Dict) -> Dict:
        source = require_str(request, "source")
        method = self._gmod_method(request)
        shards = self._shards(request)
        partition = self._partition(request)
        lanes = self._lanes(request)
        session_name = request.get("session")
        if session_name is not None and not isinstance(session_name, str):
            raise ProtocolError(E_BAD_REQUEST, "field 'session' must be a string")
        # The cache key is deliberately blind to ``shards``: the sharded
        # and monolithic solvers produce bit-identical summaries (the
        # differential suite asserts it), so a cached payload answers a
        # sharded request exactly.  ``lanes`` does feed the key — a
        # laned payload carries extra blocks a lane-less one does not.
        key = content_key(source, method, lanes)
        sleep = self._request_sleep(request)
        shard_jobs = self.config.shard_jobs

        cached: Any = False
        summary = None
        entry = self.lru.get(key)
        if entry is not None:
            summary, payload = entry
            cached = "lru"
        else:
            payload = None
            # The disk cache can only serve payloads; a session needs
            # the live summary, so it must go through the solver.
            if self.disk_cache is not None and session_name is None:
                payload = self.disk_cache.get(key)
                if payload is not None:
                    cached = "disk"
            if payload is None:

                def work():
                    if sleep:
                        time.sleep(sleep)
                    # The fleet store is a payload-only tier like the
                    # disk cache, so sessions (which need the live
                    # summary) skip it.  Consulted off the event loop:
                    # its get is a blocking round trip.
                    if self.remote_store is not None and session_name is None:
                        hit = self._store_get(key)
                        if hit is not None:
                            return None, hit
                    if shards is not None:
                        from repro.shard.solve import analyze_side_effects_sharded

                        runner = None
                        if self.fleet is not None:
                            from repro.fleet.coordinator import FleetRunner

                            runner = FleetRunner(self.fleet)
                        live = analyze_side_effects_sharded(
                            source,
                            num_shards=shards,
                            jobs=shard_jobs,
                            strategy=partition,
                            runner=runner,
                        )
                        if lanes:
                            # The sharded solver has no lane support of
                            # its own; lanes ride the coordinator-side
                            # arena, same as the batch path.
                            from repro.core.arena import get_arena
                            from repro.lanes.driver import solve_lanes

                            live.lanes = solve_lanes(
                                get_arena(live.resolved), lanes, live.timings
                            )
                    else:
                        warm = None
                        if session_name is not None:
                            # A re-opened session for an unchanged file:
                            # the persisted arena image skips the arena
                            # build; only the solve phases run cold.
                            warm = self._warm_session_arena(
                                session_name, key, source
                            )
                        if warm is not None:
                            resolved, arena = warm
                            live = analyze_side_effects(
                                resolved,
                                gmod_method=method,
                                arena=arena,
                                lanes=lanes,
                            )
                        else:
                            live = analyze_side_effects(
                                source, gmod_method=method, lanes=lanes
                            )
                    return live, payload_from_summary(live)

                summary, payload = await self._run_heavy(work)
                if summary is None:
                    cached = "store"
                    if self.disk_cache is not None:
                        self.disk_cache.put(key, payload)
                else:
                    self.metrics.observe_phases(summary.timings)
                    if shards is not None:
                        self.metrics.observe_sharded(payload.get("shard_info"))
                    self.lru.put(key, (summary, payload))
                    if self.disk_cache is not None:
                        self.disk_cache.put(key, payload)
                    if self.remote_store is not None:
                        self._store_put(key, payload)

        response = ok_response(
            request_id,
            "analyze",
            key=key,
            cached=cached,
            summary=payload["summary"],
            num_procs=payload["num_procs"],
            num_call_sites=payload["num_call_sites"],
        )
        if payload.get("shard_info") is not None:
            response["shard_info"] = payload["shard_info"]
        if payload.get("lanes") is not None:
            response["lanes"] = payload["lanes"]
        if session_name is not None:
            assert summary is not None
            existing = self.sessions.get(session_name)
            if existing is not None and existing.key == key:
                existing.analyzes += 1
                session = existing
            else:
                session = Session(
                    name=session_name,
                    key=key,
                    gmod_method=method,
                    summary=summary,
                    payload=payload,
                    analyzes=1,
                    lanes=lanes,
                )
                self.sessions.put(session)
            await self._save_session_state(session)
            response["session"] = session.brief()
        return response

    async def _verb_update(self, request_id: Any, request: Dict) -> Dict:
        from repro.core.incremental import (
            _full_resolve,
            incremental_update,
            incremental_update_from_index,
        )
        from repro.core.varsets import EffectKind
        from repro.lang.semantic import compile_source

        session_name = require_str(request, "session")
        source = require_str(request, "source")
        session = self.sessions.get(session_name)
        reloaded_index = None
        if session is None:
            # Not in memory — maybe a previous process persisted it.
            state = self._load_session_state(session_name)
            if state is None:
                raise ProtocolError(
                    E_UNKNOWN_SESSION,
                    "no session %r; open one with analyze+session first"
                    % session_name,
                )
            reloaded_index, method = state
        else:
            method = session.gmod_method
        key = content_key(source, method)
        sleep = self._request_sleep(request)
        old_summary = session.summary if session is not None else None

        def work():
            if sleep:
                time.sleep(sleep)
            new_resolved = compile_source(source)
            if old_summary is not None:
                new_summary, stats = incremental_update(old_summary, new_resolved)
            elif reloaded_index is not None:
                new_summary, stats = incremental_update_from_index(
                    reloaded_index, new_resolved, reloaded=True
                )
            else:
                # Legacy state file without an index: correctness over
                # reuse — solve from scratch, report it as such.
                new_summary, stats = _full_resolve(
                    new_resolved,
                    [EffectKind.MOD, EffectKind.USE],
                    set(),
                    reloaded=True,
                )
            return new_summary, payload_from_summary(new_summary), stats

        new_summary, payload, stats = await self._run_heavy(work)
        self.metrics.observe_update(stats)

        if session is None:
            session = Session(
                name=session_name,
                key=key,
                gmod_method=method,
                summary=new_summary,
                payload=payload,
            )
            self.sessions.put(session)
        session.key = key
        session.summary = new_summary
        session.payload = payload
        session.updates += 1
        session.last_update = stats.to_dict()
        # The incremental result is bit-identical to a from-scratch
        # solve (asserted by the test suite), so it may warm both
        # cache tiers under the new content key.
        self.lru.put(key, (new_summary, payload))
        if self.disk_cache is not None:
            self.disk_cache.put(key, payload)
        await self._save_session_state(session)

        return ok_response(
            request_id,
            "update",
            key=key,
            summary=payload["summary"],
            update_stats=session.last_update,
            session=session.brief(),
        )

    async def _verb_query(self, request_id: Any, request: Dict) -> Dict:
        session_name = require_str(request, "session")
        session = self.sessions.get(session_name)
        if session is None:
            raise ProtocolError(E_UNKNOWN_SESSION, "no session %r" % session_name)
        select = require_str(request, "select")
        summary_dict = session.payload["summary"]

        if select == "procedures":
            result: Any = sorted(summary_dict["procedures"])
        elif select == "proc":
            name = require_str(request, "proc")
            entry = summary_dict["procedures"].get(name)
            if entry is None:
                raise ProtocolError(
                    E_BAD_REQUEST, "no procedure %r in session %r" % (name, session_name)
                )
            result = dict(entry, name=name)
        elif select == "site":
            site_id = request.get("site")
            sites = summary_dict["call_sites"]
            if not isinstance(site_id, int) or not 0 <= site_id < len(sites):
                raise ProtocolError(
                    E_BAD_REQUEST,
                    "field 'site' must be an integer in [0, %d)" % len(sites),
                )
            result = sites[site_id]
        elif select == "sites":
            result = summary_dict["call_sites"]
        elif select == "lanes":
            result = sorted((session.payload.get("lanes") or {}))
        elif select == "lane":
            lane_name = require_str(request, "lane")
            lane_blocks = session.payload.get("lanes") or {}
            block = lane_blocks.get(lane_name)
            if block is None:
                raise ProtocolError(
                    E_BAD_REQUEST,
                    "session %r was not analyzed with lane %r (has: %s); "
                    "re-analyze with a 'lanes' field"
                    % (session_name, lane_name, sorted(lane_blocks) or "none"),
                )
            result = block
        elif select == "who_modifies":
            variable = require_str(request, "variable")
            kind = request.get("kind", "mod")
            if kind not in ("mod", "use"):
                raise ProtocolError(
                    E_BAD_REQUEST, "field 'kind' must be 'mod' or 'use'"
                )
            procs = sorted(
                name
                for name, entry in summary_dict["procedures"].items()
                if variable in entry["g%s" % kind]
            )
            sites = [
                site["site_id"]
                for site in summary_dict["call_sites"]
                if variable in site[kind]
            ]
            result = {"variable": variable, "kind": kind,
                      "procedures": procs, "sites": sites}
        else:
            raise ProtocolError(
                E_BAD_REQUEST,
                "unknown select %r; expected procedures/proc/site/sites/"
                "lanes/lane/who_modifies" % select,
            )
        return ok_response(
            request_id, "query", select=select, session=session_name, result=result
        )

    async def _verb_stats(self, request_id: Any, request: Dict) -> Dict:
        return ok_response(request_id, "stats", stats=self.stats_snapshot())

    async def _verb_shutdown(self, request_id: Any, request: Dict) -> Dict:
        self.request_shutdown()
        return ok_response(request_id, "shutdown", draining=True)

    # -- reporting -----------------------------------------------------------

    def stats_snapshot(self) -> Dict:
        """The full observability document (``stats`` verb and
        ``--metrics-json``)."""
        snapshot = self.metrics.to_dict()
        snapshot.update(
            {
                "protocol": PROTOCOL_VERSION,
                "config": self.config.to_dict(),
                "address": list(self.address),
                "inflight": self._active,
                "lru": self.lru.to_dict(),
                "disk_cache": (
                    self.disk_cache.stats.to_dict()
                    if self.disk_cache is not None
                    else None
                ),
                "sessions": self.sessions.to_dict(),
                "fleet": self.fleet.stats() if self.fleet is not None else None,
                "remote_store": (
                    self.remote_store.stats.to_dict()
                    if self.remote_store is not None
                    else None
                ),
            }
        )
        return snapshot


class ServerThread:
    """Run an :class:`AnalysisServer` on a background thread — the
    embedding used by tests, benchmarks, and library callers that want
    a live endpoint without managing an event loop.

    Usage::

        with ServerThread(ServerConfig(port=0)) as handle:
            client = ServerClient(port=handle.port)
            ...
    """

    def __init__(self, config: Optional[ServerConfig] = None):
        self.server = AnalysisServer(config)
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None

    @property
    def port(self) -> int:
        return self.server.address[1]

    def start(self) -> "ServerThread":
        self._thread = threading.Thread(
            target=self._main, name="ck-analysis-server", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout=30.0):
            raise RuntimeError("analysis server failed to start within 30s")
        if self._startup_error is not None:
            raise RuntimeError(
                "analysis server failed to start: %s" % self._startup_error
            )
        return self

    def stop(self, timeout: float = 30.0) -> None:
        self.server.request_shutdown()
        if self._thread is not None:
            self._thread.join(timeout=timeout)

    def _main(self) -> None:
        asyncio.run(self._amain())

    async def _amain(self) -> None:
        try:
            await self.server.start()
        except BaseException as error:
            self._startup_error = error
            self._started.set()
            return
        self._started.set()
        await self.server.serve_until_shutdown()

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
